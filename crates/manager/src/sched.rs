//! Fleet scheduling: the ready queue (FIFO round-robin or weighted fair
//! queueing) and cost-model-driven backend placement.
//!
//! **Queueing.** [`ReadyQueue`] replaces the old flat FIFO drain. Under
//! [`SchedPolicy::Wfq`] every link carries a *virtual time*: measured worker
//! seconds divided by the link's scheduling weight, accumulated as batches
//! complete. Workers always serve the ready link with the lowest virtual
//! time, so while links are backlogged each receives pool service
//! proportional to its weight — a premium (high-weight) link buys a larger
//! share, but a weight-ε link still has the lowest virtual time eventually
//! and can never starve. FIFO round-robin (the previous behaviour) remains
//! available as the baseline policy.
//!
//! **Placement.** [`decide_placement`] asks the online-calibrated cost
//! models ([`qkd_hetero::CostCalibrator`]) where a link's modeled kernels
//! are cheapest: whole-link on a simulated accelerator, the LDPC decode
//! stage alone offloaded (the paper's "decoder on the device, everything
//! else on the host" split), or everything on the host CPU. Placement only
//! changes *modeled* stage times — every backend computes bit-identical
//! results — so it composes with the fleet determinism invariant by
//! construction.
//!
//! A [`ReadyQueue`] lives for one [`crate::LinkManager::run`] drain; virtual
//! times start even at every drain, which is exactly the long-run fair
//! share since weights do not change mid-run.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

use qkd_core::ExecutionBackend;
use qkd_hetero::{CostCalibrator, CostModel, KernelKind};

/// How the ready queue orders competing links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// First-in first-out round-robin: a link rejoins the tail after every
    /// batch. Equal shares regardless of link weight.
    Fifo,
    /// Weighted fair queueing: serve the ready link with the lowest
    /// weighted-virtual-time; service shares track link weights under
    /// sustained backlog and no link can starve.
    #[default]
    Wfq,
}

impl SchedPolicy {
    /// Short label for reports and metrics.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Wfq => "wfq",
        }
    }
}

/// How links are placed onto execution backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Everything on the host CPU (the baseline; no modeled offload).
    Cpu,
    /// Ask the calibrated cost models per batch and place the link (or just
    /// its decode stage) on the backend predicted cheapest.
    #[default]
    CostModel,
}

impl PlacementPolicy {
    /// Short label for reports and metrics.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Cpu => "cpu",
            PlacementPolicy::CostModel => "cost-model",
        }
    }
}

/// Where the scheduler put a link's modeled kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkPlacement {
    /// All stages on the host CPU.
    Cpu,
    /// Whole link (decode and privacy amplification) on the given simulated
    /// accelerator.
    Whole(ExecutionBackend),
    /// Only the LDPC decode stage on the given accelerator; everything else
    /// stays on the host.
    DecodeOnly(ExecutionBackend),
}

impl LinkPlacement {
    /// Short label for reports and metrics (`cpu`, `whole:sim-gpu`,
    /// `decode:sim-fpga`, …).
    pub fn label(&self) -> String {
        match self {
            LinkPlacement::Cpu => "cpu".to_string(),
            LinkPlacement::Whole(b) => format!("whole:{}", b.label()),
            LinkPlacement::DecodeOnly(b) => format!("decode:{}", b.label()),
        }
    }

    /// The whole-engine backend this placement configures.
    pub fn backend(&self) -> ExecutionBackend {
        match self {
            LinkPlacement::Whole(b) => *b,
            LinkPlacement::Cpu | LinkPlacement::DecodeOnly(_) => ExecutionBackend::CpuSingle,
        }
    }

    /// The decode-stage override this placement configures.
    pub fn decode_backend(&self) -> Option<ExecutionBackend> {
        match self {
            LinkPlacement::DecodeOnly(b) => Some(*b),
            LinkPlacement::Cpu | LinkPlacement::Whole(_) => None,
        }
    }
}

/// Picks the cheapest placement for a link's modeled stages.
///
/// The engine models backend time for exactly two kernels — the LDPC decode
/// and the Toeplitz privacy amplification (everything else is host-measured
/// regardless of backend) — so the comparison covers those two: host for
/// both, a whole-link accelerator for both, or the decode alone offloaded
/// with the hash left on the host. Predictions come from the calibrated
/// models, so the absolute costs track the live host once the calibrator has
/// samples. Ties keep the simpler option (host first, decode-only before
/// whole-link).
pub fn decide_placement(calibrator: &CostCalibrator, block_bits: usize) -> LinkPlacement {
    let cpu = CostModel::cpu_core();
    let decode_cpu = calibrator
        .predict(&cpu, KernelKind::LdpcDecode, block_bits)
        .as_secs_f64();
    let hash_cpu = calibrator
        .predict(&cpu, KernelKind::ToeplitzHash, block_bits)
        .as_secs_f64();
    let mut best = (LinkPlacement::Cpu, decode_cpu + hash_cpu);
    for (backend, model) in [
        (ExecutionBackend::SimGpu, CostModel::sim_gpu()),
        (ExecutionBackend::SimFpga, CostModel::sim_fpga()),
    ] {
        let decode = calibrator
            .predict(&model, KernelKind::LdpcDecode, block_bits)
            .as_secs_f64();
        let hash = calibrator
            .predict(&model, KernelKind::ToeplitzHash, block_bits)
            .as_secs_f64();
        for (candidate, cost) in [
            (LinkPlacement::DecodeOnly(backend), decode + hash_cpu),
            (LinkPlacement::Whole(backend), decode + hash),
        ] {
            if cost < best.1 {
                best = (candidate, cost);
            }
        }
    }
    best.0
}

/// One dispatch decision handed to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Dispatch {
    /// The link to serve one batch of.
    pub link: usize,
    /// How many pipeline shards the link may scale to right now: 1 plus the
    /// pool workers not needed by other ready or in-flight links. Computed
    /// from queue state at dispatch time, so a lone backlogged link on a
    /// multi-worker pool may fan out while a contended pool keeps every
    /// link sequential.
    pub shard_cap: usize,
}

/// The shared ready queue of one drain: links eligible for service, ordered
/// per [`SchedPolicy`], plus the outstanding-batch count idle workers watch
/// to know when to exit and an optional dispatch budget.
pub(crate) struct ReadyQueue {
    policy: SchedPolicy,
    workers: usize,
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    /// Links eligible for service. FIFO order for [`SchedPolicy::Fifo`];
    /// membership set scanned for the minimum virtual time under
    /// [`SchedPolicy::Wfq`] (fleets are small; a linear scan under the lock
    /// beats a heap's bookkeeping).
    ready: VecDeque<usize>,
    /// Per-link virtual time: accumulated service seconds over weight.
    vtime: Vec<f64>,
    /// Per-link scheduling weight (validated positive by the spec).
    weights: Vec<f64>,
    /// Links seeded with work this drain (for the virtual-time lag metric).
    active: Vec<bool>,
    /// Batches seeded but not yet completed.
    outstanding: usize,
    /// Links currently being served by a worker.
    in_flight: usize,
    /// Dispatches remaining before the drain stops early (`None` = drain
    /// everything).
    budget: Option<usize>,
}

impl ReadyQueue {
    pub(crate) fn new(
        policy: SchedPolicy,
        workers: usize,
        budget: Option<usize>,
        weights: Vec<f64>,
    ) -> Self {
        let links = weights.len();
        Self {
            policy,
            workers,
            state: Mutex::new(QueueState {
                ready: VecDeque::new(),
                vtime: vec![0.0; links],
                weights,
                active: vec![false; links],
                outstanding: 0,
                in_flight: 0,
                budget,
            }),
            cv: Condvar::new(),
        }
    }

    /// A poisoned queue lock means a worker panicked mid-batch; the scoped
    /// pool is about to propagate that panic, so recovering the guard (the
    /// counters may undercount one batch) beats poisoning every other worker
    /// into a second panic.
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks a link ready with `batches` queued batches.
    pub(crate) fn seed(&self, link: usize, batches: usize) {
        if batches == 0 {
            return;
        }
        let mut st = self.lock_state();
        st.ready.push_back(link);
        st.outstanding += batches;
        if let Some(flag) = st.active.get_mut(link) {
            *flag = true;
        }
    }

    /// Batches seeded and not yet completed.
    pub(crate) fn outstanding(&self) -> usize {
        self.lock_state().outstanding
    }

    /// Blocks until a link is eligible for service. Returns `None` once every
    /// outstanding batch has completed or the dispatch budget is spent.
    pub(crate) fn next(&self) -> Option<Dispatch> {
        let mut st = self.lock_state();
        loop {
            if st.budget == Some(0) {
                return None;
            }
            if let Some(link) = Self::pick(self.policy, &mut st) {
                st.in_flight += 1;
                if let Some(b) = st.budget.as_mut() {
                    *b -= 1;
                    if *b == 0 {
                        // Waiters must wake to observe exhaustion.
                        self.cv.notify_all();
                    }
                }
                let spare = self.workers.saturating_sub(st.in_flight + st.ready.len());
                return Some(Dispatch {
                    link,
                    shard_cap: 1 + spare,
                });
            }
            if st.outstanding == 0 {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Removes the next link to serve from the ready set, or `None` when no
    /// link is ready.
    fn pick(policy: SchedPolicy, st: &mut QueueState) -> Option<usize> {
        match policy {
            SchedPolicy::Fifo => st.ready.pop_front(),
            SchedPolicy::Wfq => {
                let mut best: Option<(usize, f64, usize)> = None;
                for (pos, &link) in st.ready.iter().enumerate() {
                    let v = st.vtime.get(link).copied().unwrap_or(0.0);
                    let better = match best {
                        None => true,
                        // Ties break towards the lower link id, so the order
                        // is deterministic for equal-weight equal-service
                        // links.
                        Some((_, bv, bl)) => v < bv || (v == bv && link < bl),
                    };
                    if better {
                        best = Some((pos, v, link));
                    }
                }
                best.and_then(|(pos, _, _)| st.ready.remove(pos))
            }
        }
    }

    /// Marks `completed` batches done for `link` after `service_secs` of
    /// measured worker time; re-queues the link when it still has work.
    pub(crate) fn complete(&self, link: usize, service_secs: f64, completed: usize, requeue: bool) {
        let mut st = self.lock_state();
        st.outstanding = st.outstanding.saturating_sub(completed);
        st.in_flight = st.in_flight.saturating_sub(1);
        let weight = st.weights.get(link).copied().unwrap_or(1.0);
        if weight > 0.0 && service_secs > 0.0 {
            if let Some(v) = st.vtime.get_mut(link) {
                *v += service_secs / weight;
            }
        }
        if requeue {
            st.ready.push_back(link);
        }
        if st.outstanding == 0 || st.budget == Some(0) {
            self.cv.notify_all();
        } else if requeue {
            self.cv.notify_one();
        }
    }

    /// Virtual-time lag of the drain so far: the spread between the most- and
    /// least-advanced virtual times over the links that had work. Near zero
    /// means weighted service shares were honoured; a large lag means some
    /// link fell behind its entitlement (e.g. under FIFO with skewed
    /// weights).
    pub(crate) fn vtime_lag(&self) -> f64 {
        let st = self.lock_state();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        let mut seen = 0usize;
        for (link, &v) in st.vtime.iter().enumerate() {
            if st.active.get(link).copied().unwrap_or(false) {
                seen += 1;
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if seen < 2 {
            0.0
        } else {
            hi - lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a single synthetic worker: every batch takes `service(link)`
    /// seconds; each link starts with `batches` queued. Returns the dispatch
    /// order.
    fn drive(
        queue: &ReadyQueue,
        mut pending: Vec<usize>,
        service: impl Fn(usize) -> f64,
    ) -> Vec<usize> {
        for (link, &batches) in pending.iter().enumerate() {
            queue.seed(link, batches);
        }
        let mut order = Vec::new();
        while let Some(d) = queue.next() {
            order.push(d.link);
            pending[d.link] -= 1;
            queue.complete(d.link, service(d.link), 1, pending[d.link] > 0);
        }
        order
    }

    #[test]
    fn wfq_shares_track_weights() {
        let queue = ReadyQueue::new(SchedPolicy::Wfq, 1, Some(10), vec![4.0, 1.0]);
        let order = drive(&queue, vec![100, 100], |_| 1.0);
        assert_eq!(order.len(), 10);
        let link0 = order.iter().filter(|&&l| l == 0).count();
        // 4:1 weights over 10 unit-service dispatches → 8:2.
        assert_eq!(link0, 8, "order {order:?}");
        // Weighted virtual times stay level: the lag is bounded by one
        // weighted service quantum.
        assert!(queue.vtime_lag() <= 1.0 + 1e-9);
    }

    #[test]
    fn fifo_round_robin_ignores_weights() {
        let queue = ReadyQueue::new(SchedPolicy::Fifo, 1, Some(10), vec![4.0, 1.0]);
        let order = drive(&queue, vec![100, 100], |_| 1.0);
        let link0 = order.iter().filter(|&&l| l == 0).count();
        assert_eq!(link0, 5, "round robin splits evenly, order {order:?}");
        // The weight-4 link is entitled to 4× the service it got: its
        // virtual time lags the weight-1 link's by a factor of 4.
        assert!(queue.vtime_lag() > 1.0);
    }

    #[test]
    fn wfq_compensates_expensive_batches() {
        // Equal weights but link 0's batches cost 3× as much: it should be
        // served ~3× less often.
        let queue = ReadyQueue::new(SchedPolicy::Wfq, 1, Some(12), vec![1.0, 1.0]);
        let order = drive(&queue, vec![100, 100], |l| if l == 0 { 3.0 } else { 1.0 });
        let link0 = order.iter().filter(|&&l| l == 0).count();
        assert!(link0 <= 4, "expensive link overserved: {order:?}");
    }

    #[test]
    fn budget_stops_the_drain_with_backlog_left() {
        let queue = ReadyQueue::new(SchedPolicy::Wfq, 2, Some(3), vec![1.0]);
        queue.seed(0, 8);
        let mut served = 0;
        while let Some(d) = queue.next() {
            served += 1;
            queue.complete(d.link, 0.5, 1, true);
        }
        assert_eq!(served, 3);
        assert_eq!(queue.outstanding(), 5);
    }

    #[test]
    fn full_drain_without_budget() {
        let queue = ReadyQueue::new(SchedPolicy::Fifo, 1, None, vec![1.0, 1.0]);
        let order = drive(&queue, vec![3, 2], |_| 0.1);
        assert_eq!(order.len(), 5);
        assert_eq!(queue.outstanding(), 0);
    }

    #[test]
    fn shard_cap_reflects_idle_workers() {
        // One link, four workers: the lone dispatch may fan out to all
        // spare workers.
        let queue = ReadyQueue::new(SchedPolicy::Wfq, 4, None, vec![1.0]);
        queue.seed(0, 4);
        let d = queue.next().unwrap();
        assert_eq!(d.shard_cap, 4);
        queue.complete(d.link, 0.1, 1, true);

        // Four contending links on two workers: no spare capacity.
        let queue = ReadyQueue::new(SchedPolicy::Wfq, 2, None, vec![1.0; 4]);
        for link in 0..4 {
            queue.seed(link, 2);
        }
        let d = queue.next().unwrap();
        assert_eq!(d.shard_cap, 1);
    }

    #[test]
    fn cost_model_places_large_blocks_on_the_gpu() {
        let cal = CostCalibrator::new();
        let p = decide_placement(&cal, 8192);
        assert_eq!(p, LinkPlacement::Whole(ExecutionBackend::SimGpu));
        assert_eq!(p.backend(), ExecutionBackend::SimGpu);
        assert_eq!(p.decode_backend(), None);
        assert_eq!(p.label(), "whole:sim-gpu");
    }

    #[test]
    fn calibration_scales_cannot_invert_same_kind_comparisons() {
        // The calibrator multiplies every backend's prediction of a kind by
        // the same fitted scale, so whichever backend wins the decode
        // statically keeps winning after calibration.
        use qkd_hetero::StageMetrics;
        use std::time::Duration;
        let mut cal = CostCalibrator::new();
        let mut m = StageMetrics::default();
        m.record_batch(
            Duration::from_millis(400),
            Duration::from_millis(400),
            8 * 8192,
            8 * 8192,
            8,
        );
        cal.observe(KernelKind::LdpcDecode, &m);
        assert!(cal.scale(KernelKind::LdpcDecode) > 1.0);
        assert_eq!(
            decide_placement(&cal, 8192),
            LinkPlacement::Whole(ExecutionBackend::SimGpu)
        );
    }

    #[test]
    fn placement_labels_cover_all_shapes() {
        assert_eq!(LinkPlacement::Cpu.label(), "cpu");
        assert_eq!(
            LinkPlacement::DecodeOnly(ExecutionBackend::SimFpga).label(),
            "decode:sim-fpga"
        );
        assert_eq!(
            LinkPlacement::DecodeOnly(ExecutionBackend::SimFpga).decode_backend(),
            Some(ExecutionBackend::SimFpga)
        );
        assert_eq!(
            LinkPlacement::DecodeOnly(ExecutionBackend::SimFpga).backend(),
            ExecutionBackend::CpuSingle
        );
        assert_eq!(SchedPolicy::Fifo.label(), "fifo");
        assert_eq!(SchedPolicy::Wfq.label(), "wfq");
        assert_eq!(PlacementPolicy::Cpu.label(), "cpu");
        assert_eq!(PlacementPolicy::CostModel.label(), "cost-model");
        assert_eq!(SchedPolicy::default(), SchedPolicy::Wfq);
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::CostModel);
    }
}
