//! Fleet key-manager service: many QKD links over one shared worker pool,
//! delivering secret key through a consumable store.
//!
//! The engine crate (`qkd-core`) distils one session as fast as the hardware
//! allows; this crate turns that into the multi-tenant facility industrial
//! deployments actually run — several links of different channel quality
//! sharing one post-processing installation and depositing finished key into
//! a store that applications drain:
//!
//! * [`LinkManager`] — owns N concurrent links (each a full
//!   [`qkd_core::PostProcessor`] fed by its own
//!   [`qkd_simulator::CorrelatedKeySource`]), drives them over a shared,
//!   bounded worker pool under a [`SchedPolicy`] (weighted fair queueing by
//!   default, FIFO round-robin as baseline), places each link's modeled
//!   kernels on the backend the online-calibrated cost models predict
//!   cheapest ([`PlacementPolicy::CostModel`]), autoscales opted-in hot
//!   links onto pipeline shards, and applies per-link backlog admission
//!   control to bursty epoch arrivals;
//! * [`KeyStore`] — ETSI GS QKD 014-shaped delivery: `status(link)` and
//!   `get_key(link, n_bits)` with [`KeyId`]-tagged keys, strict
//!   deliver-at-most-once draining and a ledger reconciled bit-for-bit
//!   against the engines' [`qkd_core::SessionSummary`] accounting;
//! * [`FleetReport`] / [`FleetLedger`] — fleet observability: per-link and
//!   merged session summaries, merged stage throughput, aggregate output
//!   rate and Jain fairness indices.
//!
//! **Determinism across tenancy.** A link processed inside a fleet yields
//! *bit-identical* keys to the same spec replayed on a solo engine with the
//! same seed, regardless of worker count, neighbour links or arrival order —
//! see the invariant discussion on [`manager`].
//!
//! # Example
//!
//! ```
//! use qkd_manager::{FleetConfig, LinkManager, LinkSpec};
//! use qkd_simulator::WorkloadPreset;
//!
//! let mut fleet = LinkManager::new(FleetConfig::default().with_workers(2)).unwrap();
//! let metro = fleet
//!     .add_link(LinkSpec::from_preset(WorkloadPreset::Metro, 4096, 1))
//!     .unwrap();
//! fleet.submit_epoch(metro, 2).unwrap();
//! let report = fleet.run().unwrap();
//! assert!(report.total_secret_bits() > 0);
//!
//! let status = fleet.store().status(metro).unwrap();
//! let key = fleet.store().get_key(metro, 128).unwrap();
//! assert_eq!(key.len(), 128);
//! assert!(status.balances());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manager;
pub mod report;
pub mod sched;
pub mod spec;
pub mod store;

pub use manager::LinkManager;
pub use report::{jain_index, FleetLedger, FleetReport, LinkLedger, LinkReport};
pub use sched::{decide_placement, LinkPlacement, PlacementPolicy, SchedPolicy};
pub use spec::{Admission, AdmissionPolicy, FleetConfig, LinkSpec};
pub use store::{DeliveredKey, KeyId, KeyStatus, KeyStore, RecoveredBudget};
