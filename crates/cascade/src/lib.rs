//! Cascade interactive information reconciliation (baseline protocol).
//!
//! Cascade is the classic highly-interactive error-correction protocol for
//! QKD: the sifted key is cut into blocks whose parities Alice discloses; any
//! block with mismatched parity is binary-searched to locate and flip one
//! error, and corrections trigger re-checks of overlapping blocks from earlier
//! passes (the "cascade" effect). It achieves excellent reconciliation
//! efficiency at low QBER but costs many communication round trips, which is
//! exactly the trade-off the heterogeneous-pipeline evaluation quantifies
//! against one-way LDPC coding (Table 3, Figure 6).
//!
//! The implementation runs both parties in-process but accounts every parity
//! Alice would disclose (leakage) and every sequential round trip the
//! interactive protocol would need on a real classical channel.
//!
//! # Example
//!
//! ```
//! use qkd_cascade::{CascadeConfig, CascadeReconciler};
//! use qkd_types::BitVec;
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let alice = BitVec::random(&mut rng, 8192);
//! let mut bob = alice.clone();
//! for i in 0..8192 {
//!     if rng.gen_bool(0.02) { bob.flip(i); }
//! }
//! let reconciler = CascadeReconciler::new(CascadeConfig::default());
//! let outcome = reconciler.reconcile(&alice, &bob, 0.02, &mut rng).unwrap();
//! assert_eq!(outcome.corrected, alice);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod protocol;

pub use protocol::{CascadeConfig, CascadeOutcome, CascadeReconciler};
