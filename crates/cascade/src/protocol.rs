//! The Cascade protocol itself.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qkd_types::rng::random_permutation;
use qkd_types::{BitVec, QkdError, Result};

/// Configuration of the Cascade reconciler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// Number of passes (original Cascade uses 4).
    pub passes: usize,
    /// Numerator of the initial-block-size rule `k1 = alpha / qber`
    /// (0.73 in the original paper; modern variants use 1.0).
    pub alpha: f64,
    /// Upper clamp on the initial block size.
    pub max_initial_block: usize,
    /// Lower clamp on the initial block size.
    pub min_initial_block: usize,
    /// When `true`, the QBER fed to the block-size rule is re-estimated from
    /// the errors found in pass 1 for subsequent passes.
    pub adaptive_block_size: bool,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        Self {
            passes: 4,
            alpha: 0.73,
            max_initial_block: 1 << 14,
            min_initial_block: 8,
            adaptive_block_size: false,
        }
    }
}

impl CascadeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when a field is out of domain.
    pub fn validate(&self) -> Result<()> {
        if self.passes == 0 {
            return Err(QkdError::invalid_parameter("passes", "must be at least 1"));
        }
        if self.alpha <= 0.0 {
            return Err(QkdError::invalid_parameter("alpha", "must be positive"));
        }
        if self.min_initial_block < 2 {
            return Err(QkdError::invalid_parameter(
                "min_initial_block",
                "must be at least 2",
            ));
        }
        if self.max_initial_block < self.min_initial_block {
            return Err(QkdError::invalid_parameter(
                "max_initial_block",
                "must be at least min_initial_block",
            ));
        }
        Ok(())
    }

    /// Initial block size for a given QBER estimate.
    pub fn initial_block_size(&self, qber: f64) -> usize {
        let q = qber.max(1e-4);
        ((self.alpha / q).ceil() as usize).clamp(self.min_initial_block, self.max_initial_block)
    }
}

/// Result of running Cascade on one block pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeOutcome {
    /// Bob's key after correction (equal to Alice's when the protocol
    /// succeeded).
    pub corrected: BitVec,
    /// Parity bits Alice disclosed (the information leakage).
    pub leaked_bits: usize,
    /// Number of bit errors corrected.
    pub corrected_errors: usize,
    /// Number of sequential round trips on the classical channel
    /// (parities within one batch are assumed to travel together).
    pub round_trips: usize,
    /// Total parity-request messages exchanged (both directions).
    pub messages: usize,
    /// Number of Cascade passes executed.
    pub passes: usize,
}

impl CascadeOutcome {
    /// Reconciliation efficiency `f = leak / (n · h(qber))` computed from the
    /// *actual* error rate that was corrected.
    pub fn efficiency(&self, n: usize) -> Option<f64> {
        if n == 0 || self.corrected_errors == 0 {
            return None;
        }
        let qber = self.corrected_errors as f64 / n as f64;
        let h = qkd_types::key::binary_entropy(qber);
        if h <= 0.0 {
            None
        } else {
            Some(self.leaked_bits as f64 / (n as f64 * h))
        }
    }
}

/// The Cascade reconciler.
///
/// One instance is reusable across blocks; all per-block state lives on the
/// stack of [`CascadeReconciler::reconcile`].
#[derive(Debug, Clone, Default)]
pub struct CascadeReconciler {
    config: CascadeConfig,
}

/// Internal per-pass bookkeeping.
struct Pass {
    /// Permutation: position-in-pass -> original index.
    perm: Vec<usize>,
    /// Inverse permutation: original index -> position-in-pass.
    inv: Vec<usize>,
    /// Block size of this pass.
    block_size: usize,
}

impl Pass {
    fn block_of(&self, original_index: usize) -> usize {
        self.inv[original_index] / self.block_size
    }

    fn block_range(&self, block: usize, n: usize) -> (usize, usize) {
        let start = block * self.block_size;
        let end = ((block + 1) * self.block_size).min(n);
        (start, end)
    }

    fn num_blocks(&self, n: usize) -> usize {
        n.div_ceil(self.block_size)
    }
}

impl CascadeReconciler {
    /// Creates a reconciler with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate untrusted
    /// configurations with [`CascadeConfig::validate`] first.
    pub fn new(config: CascadeConfig) -> Self {
        config.validate().expect("invalid cascade configuration");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CascadeConfig {
        &self.config
    }

    /// Reconciles `bob` against `alice`, returning the corrected key and the
    /// full interaction accounting.
    ///
    /// `estimated_qber` seeds the initial block-size rule — it does not have
    /// to be exact, but a wild under-estimate degrades efficiency.
    ///
    /// # Errors
    ///
    /// * [`QkdError::DimensionMismatch`] when the two keys differ in length.
    /// * [`QkdError::InvalidParameter`] when the key is empty.
    /// * [`QkdError::ReconciliationFailed`] when residual errors remain after
    ///   all passes (possible when the true error rate is far above the
    ///   estimate).
    pub fn reconcile<R: Rng + ?Sized>(
        &self,
        alice: &BitVec,
        bob: &BitVec,
        estimated_qber: f64,
        rng: &mut R,
    ) -> Result<CascadeOutcome> {
        if alice.len() != bob.len() {
            return Err(QkdError::DimensionMismatch {
                context: "cascade reconciliation",
                expected: alice.len(),
                actual: bob.len(),
            });
        }
        let n = alice.len();
        if n == 0 {
            return Err(QkdError::invalid_parameter(
                "key",
                "cannot reconcile an empty key",
            ));
        }

        let mut corrected = bob.clone();
        let mut leaked_bits = 0usize;
        let mut messages = 0usize;
        let mut round_trips = 0usize;
        let mut corrected_errors = 0usize;

        let mut qber_for_sizing = estimated_qber;
        let mut passes: Vec<Pass> = Vec::with_capacity(self.config.passes);

        for pass_idx in 0..self.config.passes {
            let block_size = if pass_idx == 0 {
                self.config.initial_block_size(qber_for_sizing)
            } else {
                (passes[pass_idx - 1].block_size * 2).min(n.max(2))
            };
            let perm: Vec<usize> = if pass_idx == 0 {
                (0..n).collect()
            } else {
                random_permutation(rng, n)
            };
            let mut inv = vec![0usize; n];
            for (pos, &orig) in perm.iter().enumerate() {
                inv[orig] = pos;
            }
            passes.push(Pass {
                perm,
                inv,
                block_size,
            });
            let pass = &passes[pass_idx];

            // Top-level parity exchange for this pass: one batched round trip.
            round_trips += 1;
            let num_blocks = pass.num_blocks(n);
            messages += num_blocks;
            leaked_bits += num_blocks;

            let mut mismatched: Vec<(usize, usize)> = Vec::new();
            for b in 0..num_blocks {
                let (s, e) = pass.block_range(b, n);
                if block_parity(alice, &pass.perm[s..e])
                    != block_parity(&corrected, &pass.perm[s..e])
                {
                    mismatched.push((pass_idx, b));
                }
            }

            // Work queue of (pass, block) pairs with odd relative parity.
            let mut queue = mismatched;
            while let Some((p_idx, b)) = queue.pop() {
                let pass_ref = &passes[p_idx];
                let (s, e) = pass_ref.block_range(b, n);
                let indices = &pass_ref.perm[s..e];
                // The block may have been fixed by a cascading correction in
                // the meantime; re-check before searching.
                if block_parity(alice, indices) == block_parity(&corrected, indices) {
                    continue;
                }
                let (flip_index, search_leak, search_rounds) =
                    binary_search_error(alice, &corrected, indices);
                leaked_bits += search_leak;
                messages += search_leak * 2;
                round_trips += search_rounds;
                corrected.flip(flip_index);
                corrected_errors += 1;

                // Cascade: every other pass has exactly one block containing
                // the flipped position; its relative parity just toggled.
                for (other_idx, other_pass) in passes.iter().enumerate() {
                    if other_idx == p_idx {
                        continue;
                    }
                    let ob = other_pass.block_of(flip_index);
                    let (os, oe) = other_pass.block_range(ob, n);
                    let oidx = &other_pass.perm[os..oe];
                    if block_parity(alice, oidx) != block_parity(&corrected, oidx) {
                        queue.push((other_idx, ob));
                    }
                }
            }

            if pass_idx == 0 && self.config.adaptive_block_size {
                let found = corrected_errors.max(1);
                qber_for_sizing = found as f64 / n as f64;
            }
        }

        let residual = alice.hamming_distance(&corrected);
        if residual != 0 {
            return Err(QkdError::ReconciliationFailed {
                block: 0,
                iterations: self.config.passes,
                residual_errors: Some(residual),
            });
        }

        Ok(CascadeOutcome {
            corrected,
            leaked_bits,
            corrected_errors,
            round_trips,
            messages,
            passes: self.config.passes,
        })
    }
}

/// Parity of Alice's/Bob's bits at the given original indices.
fn block_parity(key: &BitVec, indices: &[usize]) -> bool {
    let mut p = false;
    for &i in indices {
        p ^= key.get(i);
    }
    p
}

/// Binary search for one error position within `indices` (which is known to
/// have odd relative parity). Returns `(original_index, parities_disclosed,
/// round_trips)`.
fn binary_search_error(alice: &BitVec, bob: &BitVec, indices: &[usize]) -> (usize, usize, usize) {
    let mut lo = 0usize;
    let mut hi = indices.len();
    let mut leaked = 0usize;
    let mut rounds = 0usize;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let first_half = &indices[lo..mid];
        leaked += 1;
        rounds += 1;
        if block_parity(alice, first_half) != block_parity(bob, first_half) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (indices[lo], leaked, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkd_types::key::binary_entropy;
    use qkd_types::rng::derive_rng;

    fn correlated(n: usize, qber: f64, seed: u64) -> (BitVec, BitVec, usize) {
        let mut rng = derive_rng(seed, "cascade-test");
        let alice = BitVec::random(&mut rng, n);
        let mut bob = alice.clone();
        let mut errs = 0;
        for i in 0..n {
            if rng.gen_bool(qber) {
                bob.flip(i);
                errs += 1;
            }
        }
        (alice, bob, errs)
    }

    #[test]
    fn corrects_all_errors_at_typical_qber() {
        for &qber in &[0.005, 0.02, 0.05] {
            let (alice, bob, errs) = correlated(16_384, qber, 42);
            let mut rng = derive_rng(1, "cascade-run");
            let out = CascadeReconciler::new(CascadeConfig::default())
                .reconcile(&alice, &bob, qber, &mut rng)
                .unwrap();
            assert_eq!(out.corrected, alice, "qber {qber}");
            assert_eq!(out.corrected_errors, errs);
        }
    }

    #[test]
    fn handles_error_free_keys() {
        let (alice, _, _) = correlated(4096, 0.0, 3);
        let bob = alice.clone();
        let mut rng = derive_rng(2, "cascade-run");
        let out = CascadeReconciler::new(CascadeConfig::default())
            .reconcile(&alice, &bob, 0.02, &mut rng)
            .unwrap();
        assert_eq!(out.corrected, alice);
        assert_eq!(out.corrected_errors, 0);
        assert!(
            out.leaked_bits > 0,
            "top-level parities are still disclosed"
        );
        assert!(out.efficiency(4096).is_none());
    }

    #[test]
    fn efficiency_is_reasonable() {
        let (alice, bob, _) = correlated(65_536, 0.03, 7);
        let mut rng = derive_rng(3, "cascade-run");
        let out = CascadeReconciler::new(CascadeConfig::default())
            .reconcile(&alice, &bob, 0.03, &mut rng)
            .unwrap();
        let f = out.efficiency(65_536).unwrap();
        assert!(f > 1.0, "leakage cannot beat the Shannon bound, f = {f}");
        assert!(f < 1.6, "Cascade efficiency should be modest, f = {f}");
    }

    #[test]
    fn leakage_exceeds_shannon_bound() {
        let (alice, bob, errs) = correlated(32_768, 0.04, 11);
        let mut rng = derive_rng(4, "cascade-run");
        let out = CascadeReconciler::new(CascadeConfig::default())
            .reconcile(&alice, &bob, 0.04, &mut rng)
            .unwrap();
        let qber = errs as f64 / 32_768.0;
        let shannon = 32_768.0 * binary_entropy(qber);
        assert!(out.leaked_bits as f64 >= shannon);
    }

    #[test]
    fn round_trips_grow_with_qber() {
        let (alice_lo, bob_lo, _) = correlated(32_768, 0.01, 13);
        let (alice_hi, bob_hi, _) = correlated(32_768, 0.08, 13);
        let mut rng = derive_rng(5, "cascade-run");
        let cfg = CascadeConfig::default();
        let lo = CascadeReconciler::new(cfg.clone())
            .reconcile(&alice_lo, &bob_lo, 0.01, &mut rng)
            .unwrap();
        let hi = CascadeReconciler::new(cfg)
            .reconcile(&alice_hi, &bob_hi, 0.08, &mut rng)
            .unwrap();
        assert!(
            hi.round_trips > lo.round_trips,
            "more errors require more interaction: {} vs {}",
            hi.round_trips,
            lo.round_trips
        );
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let a = BitVec::zeros(100);
        let b = BitVec::zeros(99);
        let mut rng = derive_rng(6, "cascade-run");
        assert!(matches!(
            CascadeReconciler::new(CascadeConfig::default()).reconcile(&a, &b, 0.02, &mut rng),
            Err(QkdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_key_rejected() {
        let mut rng = derive_rng(7, "cascade-run");
        assert!(CascadeReconciler::new(CascadeConfig::default())
            .reconcile(&BitVec::new(), &BitVec::new(), 0.02, &mut rng)
            .is_err());
    }

    #[test]
    fn block_size_rule() {
        let cfg = CascadeConfig::default();
        assert_eq!(cfg.initial_block_size(0.73), cfg.min_initial_block.max(1));
        let k1 = cfg.initial_block_size(0.01);
        assert!((73..=74).contains(&k1), "k1 = {k1}");
        // Below the QBER floor the rule saturates (and can never exceed the clamp).
        assert_eq!(cfg.initial_block_size(1e-9), cfg.initial_block_size(1e-4));
        assert!(cfg.initial_block_size(1e-9) <= cfg.max_initial_block);
        assert!(cfg.initial_block_size(0.05) >= cfg.min_initial_block);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = CascadeConfig {
            passes: 0,
            ..CascadeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CascadeConfig {
            alpha: 0.0,
            ..CascadeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CascadeConfig {
            min_initial_block: 1,
            ..CascadeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CascadeConfig {
            max_initial_block: 4,
            ..CascadeConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn works_even_when_estimate_is_wrong() {
        let (alice, bob, _) = correlated(16_384, 0.05, 17);
        let mut rng = derive_rng(8, "cascade-run");
        // Feed a badly wrong estimate; correctness must still hold.
        let out = CascadeReconciler::new(CascadeConfig::default())
            .reconcile(&alice, &bob, 0.005, &mut rng)
            .unwrap();
        assert_eq!(out.corrected, alice);
    }

    #[test]
    fn adaptive_block_size_still_correct() {
        let (alice, bob, _) = correlated(16_384, 0.03, 19);
        let cfg = CascadeConfig {
            adaptive_block_size: true,
            ..CascadeConfig::default()
        };
        let mut rng = derive_rng(9, "cascade-run");
        let out = CascadeReconciler::new(cfg)
            .reconcile(&alice, &bob, 0.01, &mut rng)
            .unwrap();
        assert_eq!(out.corrected, alice);
    }
}
