//! Integration tests: the delivery API in front of a real fleet, driven by
//! [`qkd_api::ApiClient`] over actual TCP sockets.

use std::sync::Arc;

use qkd_api::{ApiClient, ApiConfig, ApiServer, RateCap, SaeProfile, SaeRegistry};
use qkd_manager::{FleetConfig, KeyId, LinkManager, LinkSpec};
use qkd_simulator::WorkloadPreset;
use qkd_types::QkdError;

/// A two-link fleet with distilled key in the store, plus the SAE world
/// around it: (alice, bob) ↔ link 0, (carol, dave) ↔ link 1, and `mallory`
/// registered but entitled to nothing.
fn fleet_and_registry() -> (LinkManager, Arc<SaeRegistry>) {
    let mut fleet =
        LinkManager::new(FleetConfig::default().with_workers(2).with_max_backlog(8)).unwrap();
    for seed in [11u64, 12] {
        let link = fleet
            .add_link(LinkSpec::from_preset(WorkloadPreset::Metro, 4096, seed))
            .unwrap();
        fleet.submit_epoch(link, 2).unwrap();
    }
    fleet.run().unwrap();

    let registry = Arc::new(SaeRegistry::new());
    for (id, token) in [
        ("alice-app", "tok-alice"),
        ("bob-app", "tok-bob"),
        ("carol-app", "tok-carol"),
        ("dave-app", "tok-dave"),
        ("mallory-app", "tok-mallory"),
    ] {
        registry.register(SaeProfile::new(id, token)).unwrap();
    }
    registry.entitle("alice-app", "bob-app", 0).unwrap();
    registry.entitle("carol-app", "dave-app", 1).unwrap();
    (fleet, registry)
}

#[test]
fn master_and_slave_drain_bit_identical_keys_over_tcp() {
    let (fleet, registry) = fleet_and_registry();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let alice = ApiClient::new(addr, "tok-alice");
    let bob = ApiClient::new(addr, "tok-bob");

    let before = alice.status("bob-app").unwrap();
    assert_eq!(before.link, 0);
    assert_eq!(before.key_size, 256);
    assert!(before.stored_key_count >= 3, "{before:?}");
    assert_eq!(
        before.available_bits,
        fleet.store().status(0).unwrap().available_bits
    );

    // Master reserves three keys; slave retrieves them by ID.
    let reserved = alice.enc_keys("bob-app", 3, 256).unwrap();
    assert_eq!(reserved.len(), 3);
    let ids: Vec<KeyId> = reserved.iter().map(|k| k.id).collect();
    let picked = bob.dec_keys("alice-app", &ids).unwrap();
    assert_eq!(picked.len(), 3);
    for (master_key, slave_key) in reserved.iter().zip(&picked) {
        assert_eq!(master_key.id, slave_key.id);
        assert_eq!(master_key.bits.len(), 256);
        assert_eq!(
            master_key.bits, slave_key.bits,
            "master and slave copies must be bit-identical"
        );
    }

    // Each ID was redeemable exactly once.
    assert!(matches!(
        bob.dec_keys("alice-app", &ids),
        Err(QkdError::UnknownKeyId { .. })
    ));
    let after = alice.status("bob-app").unwrap();
    assert_eq!(after.available_bits, before.available_bits - 3 * 256);
    assert_eq!(after.reserved_keys, 0);

    // The HTTP boundary did not disturb the fleet's ledger.
    fleet.reconcile().unwrap();
    server.shutdown();
}

#[test]
fn entitlements_and_authentication_are_enforced_at_the_boundary() {
    let (fleet, registry) = fleet_and_registry();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // An unknown bearer token is refused without reaching any endpoint.
    let stranger = ApiClient::new(addr, "tok-unknown");
    assert!(matches!(
        stranger.status("bob-app"),
        Err(QkdError::Unauthorized { .. })
    ));

    // A registered but unentitled SAE is refused with the 401 envelope.
    let mallory = ApiClient::new(addr, "tok-mallory");
    for result in [
        mallory.status("bob-app").map(|_| ()),
        mallory.enc_keys("bob-app", 1, 128).map(|_| ()),
        mallory
            .dec_keys("alice-app", &[KeyId { link: 0, serial: 0 }])
            .map(|_| ()),
    ] {
        assert!(matches!(result, Err(QkdError::Unauthorized { .. })));
    }

    // A slave cannot redeem IDs that belong to another pair's link: carol
    // reserves on link 1, bob (entitled on link 0 only) cannot pick up.
    let carol = ApiClient::new(addr, "tok-carol");
    let bob = ApiClient::new(addr, "tok-bob");
    let foreign = carol.enc_keys("dave-app", 1, 128).unwrap();
    let err = bob.dec_keys("alice-app", &[foreign[0].id]).unwrap_err();
    assert!(matches!(err, QkdError::Unauthorized { .. }), "{err}");
    // The reservation is still there for the rightful peer.
    let dave = ApiClient::new(addr, "tok-dave");
    let picked = dave.dec_keys("carol-app", &[foreign[0].id]).unwrap();
    assert_eq!(picked[0].bits, foreign[0].bits);

    // Routing misses answer with proper HTTP statuses (not 400): an unknown
    // route is 404, a wrong method on a real endpoint is 405.
    let raw = |request: &str| {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        text.split(' ').nth(1).unwrap().parse::<u16>().unwrap()
    };
    // (`connection: close` so reading to EOF terminates promptly on the
    // keep-alive server.)
    let auth = "authorization: Bearer tok-bob\r\nconnection: close";
    assert_eq!(
        raw(&format!("GET /api/v1/nope HTTP/1.1\r\n{auth}\r\n\r\n")),
        404
    );
    assert_eq!(
        raw(&format!(
            "GET /api/v1/keys/alice-app/enc_keys HTTP/1.1\r\n{auth}\r\n\r\n"
        )),
        405
    );

    fleet.reconcile().unwrap();
    server.shutdown();
}

#[test]
fn shortfalls_rate_caps_and_bad_requests_map_to_typed_errors() {
    let (fleet, registry) = fleet_and_registry();
    registry
        .register(SaeProfile::new("capped-app", "tok-capped").with_cap(RateCap::requests(3)))
        .unwrap();
    registry.entitle("capped-app", "bob-app", 0).unwrap();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // A key size past the server's cap is a parameter error.
    let alice = ApiClient::new(addr, "tok-alice");
    let available = alice.status("bob-app").unwrap().available_bits;
    match alice.enc_keys("bob-app", 1, ApiConfig::default().max_key_size + 1) {
        Err(QkdError::InvalidParameter { .. }) => {}
        other => panic!("expected a parameter error, got {other:?}"),
    }
    let number = (available / 256) as usize + 1;
    match alice.enc_keys("bob-app", number, 256) {
        Err(QkdError::KeyStoreShortfall {
            link: 0,
            requested,
            available: got,
        }) => {
            assert_eq!(requested, number as u64 * 256);
            assert_eq!(got, available);
        }
        other => panic!("expected a shortfall, got {other:?}"),
    }
    assert_eq!(alice.status("bob-app").unwrap().available_bits, available);

    // Two pairs share link 0 here ((alice, bob) and (capped, bob)): a
    // reservation made for bob by alice must not be redeemable by capped —
    // the pickup claim is the recipient's identity, not just the link — and
    // not even by the master that made it. The refusal reads exactly like
    // an unknown ID, so foreign SAEs cannot probe reservations either.
    let reserved = alice.enc_keys("bob-app", 1, 64).unwrap();
    let ids = [reserved[0].id];
    let capped = ApiClient::new(addr, "tok-capped");
    assert!(matches!(
        capped.dec_keys("bob-app", &ids),
        Err(QkdError::UnknownKeyId { .. })
    ));
    assert!(matches!(
        alice.dec_keys("bob-app", &ids),
        Err(QkdError::UnknownKeyId { .. })
    ));
    let bob = ApiClient::new(addr, "tok-bob");
    assert_eq!(
        bob.dec_keys("alice-app", &ids).unwrap()[0].bits,
        reserved[0].bits,
        "the rightful recipient still collects, bit-exactly"
    );

    // The capped SAE spends its two remaining requests, then is limited.
    capped.status("bob-app").unwrap();
    capped.enc_keys("bob-app", 1, 64).unwrap();
    match capped.status("bob-app") {
        Err(QkdError::RateLimited { sae, .. }) => assert_eq!(sae, "capped-app"),
        other => panic!("expected rate limiting, got {other:?}"),
    }

    fleet.reconcile().unwrap();
    server.shutdown();
}

#[test]
fn keep_alive_connections_serve_many_pipelined_round_trips() {
    let (fleet, registry) = fleet_and_registry();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Two kept-alive clients drive ten full enc/dec rounds each over the
    // same pair of TCP connections.
    let alice = ApiClient::new(addr, "tok-alice");
    let bob = ApiClient::new(addr, "tok-bob");
    for round in 0..10 {
        let reserved = alice.enc_keys("bob-app", 2, 64).unwrap();
        let ids: Vec<KeyId> = reserved.iter().map(|k| k.id).collect();
        let picked = bob.dec_keys("alice-app", &ids).unwrap();
        for (m, s) in reserved.iter().zip(&picked) {
            assert_eq!(
                m.bits, s.bits,
                "round {round}: copies must be bit-identical"
            );
        }
    }
    assert_eq!(
        server.stats().connections_accepted(),
        2,
        "every round trip must reuse the two kept-alive connections"
    );
    assert_eq!(server.stats().requests_served(), 20);

    // Raw pipelining: several requests written back-to-back on one socket
    // come back as complete responses, in order.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let burst: String = (0..4)
            .map(|_| {
                "GET /api/v1/keys/bob-app/status HTTP/1.1\r\n\
                 authorization: Bearer tok-alice\r\n\r\n"
                    .to_string()
            })
            .collect();
        stream.write_all(burst.as_bytes()).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut served = 0;
        while served < 4 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-pipeline");
            buf.extend_from_slice(&chunk[..n]);
            served = String::from_utf8_lossy(&buf)
                .matches("\"available_bits\"")
                .count();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 4);
    }
    assert_eq!(server.stats().connections_accepted(), 3);

    fleet.reconcile().unwrap();
    server.shutdown();
}

#[test]
fn idle_connections_are_harvested_while_the_server_keeps_serving() {
    let (fleet, registry) = fleet_and_registry();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig {
            idle_timeout: std::time::Duration::from_millis(80),
            ..ApiConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A client that goes quiet after one request loses its connection…
    use std::io::Read;
    let mut stale = std::net::TcpStream::connect(addr).unwrap();
    stale
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 512];
    let closed = loop {
        match stale.read(&mut buf) {
            Ok(0) | Err(_) => break true,
            Ok(_) => {}
        }
    };
    assert!(closed, "the idle connection must be harvested");
    assert!(server.stats().connections_harvested() >= 1);

    // …while fresh traffic — including a kept-alive client that
    // transparently reconnects — keeps working.
    let alice = ApiClient::new(addr, "tok-alice");
    let before = alice.status("bob-app").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    // The client's parked connection has been harvested by now; the next
    // call must retry on a fresh one rather than failing.
    let after = alice.status("bob-app").unwrap();
    assert_eq!(before.available_bits, after.available_bits);

    fleet.reconcile().unwrap();
    server.shutdown();
}

#[test]
fn uncollected_reservations_expire_back_into_the_pool() {
    let (fleet, registry) = fleet_and_registry();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig {
            reservation_ttl: Some(std::time::Duration::from_millis(100)),
            sweep_interval: std::time::Duration::from_millis(20),
            ..ApiConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let alice = ApiClient::new(addr, "tok-alice");
    let bob = ApiClient::new(addr, "tok-bob");
    let before = alice.status("bob-app").unwrap();

    // Alice reserves, bob never shows up.
    let reserved = alice.enc_keys("bob-app", 2, 128).unwrap();
    let ids: Vec<KeyId> = reserved.iter().map(|k| k.id).collect();
    assert_eq!(alice.status("bob-app").unwrap().reserved_keys, 2);

    // Wait out the TTL plus a few sweep intervals.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if alice.status("bob-app").unwrap().reservations_expired == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweeper did not reclaim the reservations in time"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The bits are available again, the parked keys are gone, and a late
    // pickup reads exactly like an unknown ID.
    let after = alice.status("bob-app").unwrap();
    assert_eq!(after.available_bits, before.available_bits);
    assert_eq!(after.reserved_keys, 0);
    assert!(matches!(
        bob.dec_keys("alice-app", &ids),
        Err(QkdError::UnknownKeyId { .. })
    ));

    // The reclaimed bits flow through a fresh reservation that *is*
    // collected in time — bit-for-bit delivery still works.
    let retry = alice.enc_keys("bob-app", 2, 128).unwrap();
    let retry_ids: Vec<KeyId> = retry.iter().map(|k| k.id).collect();
    assert!(
        retry_ids.iter().all(|id| !ids.contains(id)),
        "expired serials must never be reused"
    );
    let picked = bob.dec_keys("alice-app", &retry_ids).unwrap();
    for (m, s) in retry.iter().zip(&picked) {
        assert_eq!(m.bits, s.bits);
    }

    // The ledger balances bit-for-bit after expiry and redelivery.
    fleet.reconcile().unwrap();
    server.shutdown();
}

/// The durability tier end-to-end: a journaled fleet serves a master's
/// `enc_keys` over TCP, the whole server-side world is torn down
/// mid-session (reservation parked, never collected), and a second
/// incarnation recovered from the journal lets the slave redeem the
/// pre-crash reservation — bit-identical, exactly once, with budgets and
/// serial continuity intact.
#[test]
fn server_restart_recovers_reservations_budgets_and_serials_over_tcp() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("restart-e2e");
    let _ = std::fs::remove_dir_all(&dir);
    let fleet_config = || FleetConfig::default().with_workers(2).with_max_backlog(8);
    let saes = |registry: &SaeRegistry| {
        for (id, token) in [("alice-app", "tok-alice"), ("bob-app", "tok-bob")] {
            registry.register(SaeProfile::new(id, token)).unwrap();
        }
        registry.entitle("alice-app", "bob-app", 0).unwrap();
    };

    // Incarnation one: distil key, reserve two keys over TCP, then tear
    // everything down with the reservation still parked.
    let (ids, master_copies, usage, available) = {
        let mut fleet = LinkManager::open_durable(fleet_config(), &dir).unwrap();
        let link = fleet
            .add_link(LinkSpec::from_preset(WorkloadPreset::Metro, 4096, 11))
            .unwrap();
        fleet.submit_epoch(link, 2).unwrap();
        fleet.run().unwrap();

        let registry = Arc::new(SaeRegistry::new());
        saes(&registry);
        registry.attach_journal(fleet.store().journal().unwrap());

        let server = ApiServer::start(
            fleet.store_handle(),
            Arc::clone(&registry),
            ApiConfig::default(),
        )
        .unwrap();
        let alice = ApiClient::new(server.local_addr(), "tok-alice");
        let reserved = alice.enc_keys("bob-app", 2, 128).unwrap();
        let status = alice.status("bob-app").unwrap();
        server.shutdown();
        (
            reserved.iter().map(|k| k.id).collect::<Vec<KeyId>>(),
            reserved,
            registry.usage("alice-app").unwrap(),
            status.available_bits,
        )
    };

    // Incarnation two: replay the journal, re-register the SAE world,
    // restore its budgets, and serve again.
    let fleet = LinkManager::open_durable(fleet_config(), &dir).unwrap();
    let registry = Arc::new(SaeRegistry::new());
    saes(&registry);
    registry.restore(fleet.recovered_budgets()).unwrap();
    registry.attach_journal(fleet.store().journal().unwrap());
    assert_eq!(
        registry.usage("alice-app").unwrap(),
        usage,
        "spent budget must survive the restart"
    );

    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let alice = ApiClient::new(addr, "tok-alice");
    let bob = ApiClient::new(addr, "tok-bob");
    assert_eq!(
        alice.status("bob-app").unwrap().available_bits,
        available,
        "the recovered pool must match the pre-crash pool"
    );

    // The slave redeems the pre-crash reservation — bit-identical to the
    // copies the master took before the restart, and exactly once.
    let picked = bob.dec_keys("alice-app", &ids).unwrap();
    for (master_key, slave_key) in master_copies.iter().zip(&picked) {
        assert_eq!(master_key.id, slave_key.id);
        assert_eq!(
            master_key.bits, slave_key.bits,
            "recovered copy must be bit-identical to the pre-crash delivery"
        );
    }
    assert!(matches!(
        bob.dec_keys("alice-app", &ids),
        Err(QkdError::UnknownKeyId { .. })
    ));

    // Serial continuity: fresh reservations never collide with pre-crash
    // IDs, and the recovered ledger still balances.
    let fresh = alice.enc_keys("bob-app", 1, 64).unwrap();
    assert!(
        ids.iter().all(|id| *id != fresh[0].id),
        "serials must never be reused across a restart"
    );
    let status = fleet.store().status(0).unwrap();
    assert!(status.balances(), "{status:?}");
    fleet.reconcile().unwrap();
    server.shutdown();
}

#[test]
fn metrics_endpoint_covers_every_layer_of_a_two_sae_session() {
    let (fleet, registry) = fleet_and_registry();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // One full master/slave exchange so the HTTP families have traffic.
    let alice = ApiClient::new(addr, "tok-alice");
    let bob = ApiClient::new(addr, "tok-bob");
    alice.status("bob-app").unwrap();
    let reserved = alice.enc_keys("bob-app", 2, 128).unwrap();
    let ids: Vec<KeyId> = reserved.iter().map(|k| k.id).collect();
    bob.dec_keys("alice-app", &ids).unwrap();
    // …and one refusal so the 401 counter is live.
    assert!(ApiClient::new(addr, "tok-unknown")
        .status("bob-app")
        .is_err());

    let text = alice.metrics().unwrap();
    // Distilling the fleet above ran the engine, the LDPC decoder and the
    // manager in this very process; the exchange exercised the HTTP tier.
    // The exposition must cover all four layers.
    for family in [
        // engine
        "qkd_engine_stage_seconds",
        "qkd_engine_blocks_total",
        "qkd_engine_qber",
        // LDPC decoder
        "qkd_ldpc_decode_iterations",
        "qkd_ldpc_kernel_dispatch_total",
        "qkd_ldpc_ladder_attempts",
        "qkd_ldpc_syndrome_leaked_bits_total",
        // manager + store
        "qkd_fleet_batches_total",
        "qkd_store_deposits_total",
        "qkd_store_reservations_total",
        // HTTP tier
        "qkd_http_requests_total",
        "qkd_http_request_seconds_bucket",
        "qkd_http_connections_accepted_total",
        "qkd_http_responses_total",
    ] {
        assert!(text.contains(family), "/metrics must cover {family}");
    }
    // Histograms expose the full Prometheus shape, routes are labelled by
    // their registered pattern, and the refusal landed on the 401 counter.
    assert!(text.contains("# TYPE qkd_http_request_seconds histogram"));
    assert!(text.contains(r#"route="/api/v1/keys/{slave}/enc_keys""#));
    assert!(text.contains(r#"le="+Inf""#));
    assert!(text.contains(r#"qkd_http_responses_total{status="401"}"#));

    // The JSON variant carries the same families plus quantiles.
    let snapshot = alice.metrics_json().unwrap();
    let encoded = snapshot.encode();
    assert!(snapshot.get("counters").is_some());
    assert!(snapshot.get("gauges").is_some());
    assert!(snapshot.get("histograms").is_some());
    assert!(encoded.contains("\"p99\""));

    // `ServerStats` reads the same registry series the exposition renders:
    // the keep-alive connections above are tracked on the gauge, and the
    // served-request counter in the scrape text is the accessor's value.
    assert!(server.stats().connections_tracked() >= 1.0);
    assert!(server.stats().requests_served() >= 5);

    // Park the scrape artifacts for CI to upload.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(dir.join("metrics-snapshot.prom"), &text).unwrap();
    std::fs::write(dir.join("metrics-snapshot.json"), &encoded).unwrap();

    fleet.reconcile().unwrap();
    server.shutdown();
}
