//! SAE (Secure Application Entity) identities, entitlements and rate caps.
//!
//! Following the ETSI GS QKD 014 trust model, every consumer of the
//! delivery API is a named SAE that authenticates with a bearer token, and
//! key material moves only along *entitled pairs*: a (master, slave) SAE
//! pair is bound to exactly one fleet link, and neither side can address a
//! link it is not paired on. Per-SAE budgets bound how many requests an SAE
//! may make and how much fresh key it may draw — the explicit
//! consumer/processor boundary argued for by Lorünser et al. (*On the
//! Security of Offloading Post-Processing for QKD*).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;

use qkd_journal::{Journal, Record};
use qkd_manager::RecoveredBudget;
use qkd_types::{QkdError, Result};

/// Per-SAE consumption budgets. `u64::MAX` (the default) means unbounded.
///
/// Budgets are charged at admission: a request consumes one request unit
/// plus the key bits it *asks* for, delivered or not — so a consumer cannot
/// probe the store for free past its cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateCap {
    /// Total requests the SAE may make over the registry's lifetime.
    pub max_requests: u64,
    /// Total key bits the SAE may request via `enc_keys`.
    pub max_key_bits: u64,
}

impl Default for RateCap {
    fn default() -> Self {
        Self {
            max_requests: u64::MAX,
            max_key_bits: u64::MAX,
        }
    }
}

impl RateCap {
    /// A cap on requests only.
    pub fn requests(max_requests: u64) -> Self {
        Self {
            max_requests,
            ..Self::default()
        }
    }

    /// A cap on requested key bits only.
    pub fn key_bits(max_key_bits: u64) -> Self {
        Self {
            max_key_bits,
            ..Self::default()
        }
    }
}

/// One registered SAE: its identity, bearer token and budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaeProfile {
    /// The SAE's identity (the `{SAE_ID}` path segments of the API).
    pub id: String,
    /// Bearer token presented in the `Authorization` header.
    pub token: String,
    /// Consumption budgets.
    pub cap: RateCap,
}

impl SaeProfile {
    /// A profile with unbounded budgets.
    pub fn new(id: impl Into<String>, token: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            token: token.into(),
            cap: RateCap::default(),
        }
    }

    /// Replaces the budgets.
    pub fn with_cap(mut self, cap: RateCap) -> Self {
        self.cap = cap;
        self
    }
}

#[derive(Debug)]
struct SaeState {
    profile: SaeProfile,
    requests_used: u64,
    key_bits_used: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    saes: BTreeMap<String, SaeState>,
    /// Bearer token → SAE id.
    tokens: BTreeMap<String, String>,
    /// Entitled (caller, peer) pairs → fleet link; both orientations are
    /// stored, since master and slave each address the pair from their side.
    pairs: BTreeMap<(String, String), usize>,
}

/// Thread-safe registry of SAEs, entitlements and budget counters; shared
/// between the server's worker threads.
#[derive(Debug, Default)]
pub struct SaeRegistry {
    inner: Mutex<RegistryInner>,
    /// Advisory back-off carried by 429 refusals, in milliseconds. The
    /// default of 0 is honest for [`RateCap`] budgets, which never refill;
    /// deployments that reset budgets out of band publish their cadence
    /// via [`SaeRegistry::set_retry_after_hint`].
    retry_after_hint_ms: AtomicU64,
    /// Durability tier, when attached: every budget charge is journaled as
    /// a [`Record::Budget`] (absolute counters, last record wins) before
    /// the request is admitted, so a restarted server cannot hand a
    /// consumer a fresh budget.
    journal: OnceLock<Arc<Journal>>,
}

impl SaeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the back-off hint rate-limited consumers receive (the
    /// `retry_after_ms` member of 429 envelopes). Zero — the default —
    /// tells consumers the budget never refills.
    pub fn set_retry_after_hint(&self, hint: Duration) {
        self.retry_after_hint_ms
            .store(hint.as_millis() as u64, Ordering::Relaxed);
    }

    /// Registers an SAE.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for an empty id or token, a
    /// duplicate id, or a token already bound to another SAE.
    pub fn register(&self, profile: SaeProfile) -> Result<()> {
        if profile.id.is_empty() || profile.token.is_empty() {
            return Err(QkdError::invalid_parameter(
                "sae",
                "SAE id and token must be non-empty",
            ));
        }
        let mut inner = self.inner.lock();
        if inner.saes.contains_key(&profile.id) {
            return Err(QkdError::invalid_parameter(
                "sae",
                format!("SAE `{}` is already registered", profile.id),
            ));
        }
        if inner.tokens.contains_key(&profile.token) {
            return Err(QkdError::invalid_parameter(
                "sae",
                "token is already bound to another SAE",
            ));
        }
        inner
            .tokens
            .insert(profile.token.clone(), profile.id.clone());
        inner.saes.insert(
            profile.id.clone(),
            SaeState {
                profile,
                requests_used: 0,
                key_bits_used: 0,
            },
        );
        Ok(())
    }

    /// Entitles the SAE pair `(a, b)` to drain fleet link `link` — in both
    /// orientations, since either side may act as master.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when either SAE is unknown,
    /// `a == b`, or the pair is already entitled to a different link.
    pub fn entitle(&self, a: &str, b: &str, link: usize) -> Result<()> {
        if a == b {
            return Err(QkdError::invalid_parameter(
                "sae",
                "an SAE cannot be paired with itself",
            ));
        }
        let mut inner = self.inner.lock();
        for sae in [a, b] {
            if !inner.saes.contains_key(sae) {
                return Err(QkdError::invalid_parameter(
                    "sae",
                    format!("SAE `{sae}` is not registered"),
                ));
            }
        }
        let key = (a.to_string(), b.to_string());
        if let Some(&existing) = inner.pairs.get(&key) {
            if existing != link {
                return Err(QkdError::invalid_parameter(
                    "sae",
                    format!("pair ({a}, {b}) is already entitled to link {existing}"),
                ));
            }
        }
        inner.pairs.insert(key, link);
        inner.pairs.insert((b.to_string(), a.to_string()), link);
        Ok(())
    }

    /// Resolves a bearer token to the SAE it authenticates.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::Unauthorized`] for a missing or unknown token
    /// (without echoing the credential).
    pub fn authenticate(&self, token: Option<&str>) -> Result<String> {
        let token = token.ok_or_else(|| QkdError::Unauthorized {
            reason: "missing bearer token".into(),
        })?;
        self.inner
            .lock()
            .tokens
            .get(token)
            .cloned()
            .ok_or_else(|| QkdError::Unauthorized {
                reason: "unknown bearer token".into(),
            })
    }

    /// The fleet link serving the `(caller, peer)` SAE pair.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::Unauthorized`] when the pair is not entitled —
    /// including when `peer` does not exist, so probing for SAE names and
    /// probing for entitlements are indistinguishable.
    pub fn link_for(&self, caller: &str, peer: &str) -> Result<usize> {
        self.inner
            .lock()
            .pairs
            .get(&(caller.to_string(), peer.to_string()))
            .copied()
            .ok_or_else(|| QkdError::Unauthorized {
                reason: format!("SAE `{caller}` has no entitlement with `{peer}`"),
            })
    }

    /// Attaches the store's journal: from now on every budget charge is
    /// staged as a [`Record::Budget`] *under the registry lock* (so log
    /// order is charge order) and group-committed before [`Self::admit`]
    /// returns. Attach at most once; later calls are ignored.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Seeds the usage counters from budgets recovered by journal replay
    /// (`KeyStore::open_durable` / `LinkManager::recovered_budgets`). Call
    /// after registering the SAE profiles and before serving traffic.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when a recovered budget names
    /// an SAE that is not registered — spent budget must not silently reset
    /// because a profile went missing across the restart.
    pub fn restore(&self, budgets: &[RecoveredBudget]) -> Result<()> {
        let mut inner = self.inner.lock();
        for budget in budgets {
            let state = inner.saes.get_mut(&budget.sae).ok_or_else(|| {
                QkdError::invalid_parameter(
                    "sae",
                    format!(
                        "recovered budget for `{}`, which is not registered",
                        budget.sae
                    ),
                )
            })?;
            state.requests_used = budget.requests_used;
            state.key_bits_used = budget.key_bits_used;
        }
        Ok(())
    }

    /// One [`Record::Budget`] per registered SAE, with the current absolute
    /// counters — the `extra` records a compaction must append after its
    /// snapshot, since [`Record::Snapshot`] resets link state but carries
    /// no budgets.
    pub fn budget_records(&self) -> Vec<Record> {
        let inner = self.inner.lock();
        inner
            .saes
            .values()
            .map(|state| Record::Budget {
                sae: state.profile.id.clone(),
                requests_used: state.requests_used,
                key_bits_used: state.key_bits_used,
            })
            .collect()
    }

    /// Charges one request plus `key_bits` requested bits against the SAE's
    /// budgets, atomically: either both fit and both are committed, or
    /// nothing is.
    ///
    /// When a journal is attached, the charge is durable before this
    /// returns `Ok`; a journal failure rolls the charge back and refuses
    /// the request.
    ///
    /// # Errors
    ///
    /// * [`QkdError::InvalidParameter`] for an unknown SAE.
    /// * [`QkdError::RateLimited`] when either budget would be exceeded.
    /// * [`QkdError::JournalError`] when the attached journal cannot make
    ///   the charge durable.
    pub fn admit(&self, sae: &str, key_bits: u64) -> Result<()> {
        let ticket = {
            let mut inner = self.inner.lock();
            let state = inner.saes.get_mut(sae).ok_or_else(|| {
                QkdError::invalid_parameter("sae", format!("SAE `{sae}` is not registered"))
            })?;
            let cap = state.profile.cap;
            let retry_after_ms = self.retry_after_hint_ms.load(Ordering::Relaxed);
            if state.requests_used >= cap.max_requests {
                return Err(QkdError::RateLimited {
                    sae: sae.to_string(),
                    reason: format!("request budget of {} spent", cap.max_requests),
                    retry_after_ms,
                });
            }
            if key_bits > cap.max_key_bits.saturating_sub(state.key_bits_used) {
                return Err(QkdError::RateLimited {
                    sae: sae.to_string(),
                    reason: format!(
                        "key-bit budget exceeded: {} of {} used, {key_bits} more requested",
                        state.key_bits_used, cap.max_key_bits
                    ),
                    retry_after_ms,
                });
            }
            state.requests_used += 1;
            state.key_bits_used += key_bits;
            match self.journal.get() {
                None => None,
                Some(journal) => {
                    let record = Record::Budget {
                        sae: sae.to_string(),
                        requests_used: state.requests_used,
                        key_bits_used: state.key_bits_used,
                    };
                    match journal.submit(&record) {
                        Ok(ticket) => Some(ticket),
                        Err(e) => {
                            // Un-charge: the request was never admitted.
                            state.requests_used -= 1;
                            state.key_bits_used -= key_bits;
                            return Err(e);
                        }
                    }
                }
            }
        };
        if let (Some(journal), Some(ticket)) = (self.journal.get(), ticket) {
            journal.commit(ticket)?;
        }
        Ok(())
    }

    /// The `(requests_used, key_bits_used)` counters of an SAE.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for an unknown SAE.
    pub fn usage(&self, sae: &str) -> Result<(u64, u64)> {
        let inner = self.inner.lock();
        let state = inner.saes.get(sae).ok_or_else(|| {
            QkdError::invalid_parameter("sae", format!("SAE `{sae}` is not registered"))
        })?;
        Ok((state.requests_used, state.key_bits_used))
    }

    /// Registered SAE ids, in order.
    pub fn saes(&self) -> Vec<String> {
        self.inner.lock().saes.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn registry() -> SaeRegistry {
        let reg = SaeRegistry::new();
        reg.register(SaeProfile::new("alice-app", "tok-a")).unwrap();
        reg.register(SaeProfile::new("bob-app", "tok-b")).unwrap();
        reg.register(SaeProfile::new("carol-app", "tok-c")).unwrap();
        reg.entitle("alice-app", "bob-app", 0).unwrap();
        reg
    }

    #[test]
    fn authenticates_tokens_without_echoing_them() {
        let reg = registry();
        assert_eq!(reg.authenticate(Some("tok-a")).unwrap(), "alice-app");
        let err = reg.authenticate(Some("tok-wrong")).unwrap_err();
        assert!(matches!(err, QkdError::Unauthorized { .. }));
        assert!(!err.to_string().contains("tok-wrong"));
        assert!(matches!(
            reg.authenticate(None),
            Err(QkdError::Unauthorized { .. })
        ));
    }

    #[test]
    fn entitlements_bind_pairs_to_links_in_both_orientations() {
        let reg = registry();
        assert_eq!(reg.link_for("alice-app", "bob-app").unwrap(), 0);
        assert_eq!(reg.link_for("bob-app", "alice-app").unwrap(), 0);
        // Unentitled pair, unknown peer and self-pair are all refused.
        assert!(matches!(
            reg.link_for("carol-app", "alice-app"),
            Err(QkdError::Unauthorized { .. })
        ));
        assert!(matches!(
            reg.link_for("alice-app", "nobody"),
            Err(QkdError::Unauthorized { .. })
        ));
        assert!(reg.entitle("alice-app", "alice-app", 1).is_err());
        assert!(reg.entitle("alice-app", "nobody", 1).is_err());
        // Re-entitling the same pair to the same link is idempotent; to a
        // different link is an error.
        reg.entitle("bob-app", "alice-app", 0).unwrap();
        assert!(reg.entitle("alice-app", "bob-app", 2).is_err());
    }

    #[test]
    fn duplicate_ids_and_tokens_are_rejected() {
        let reg = registry();
        assert!(reg.register(SaeProfile::new("alice-app", "tok-x")).is_err());
        assert!(reg.register(SaeProfile::new("dave-app", "tok-a")).is_err());
        assert!(reg.register(SaeProfile::new("", "tok-y")).is_err());
        assert!(reg.register(SaeProfile::new("eve-app", "")).is_err());
        assert_eq!(reg.saes().len(), 3);
    }

    #[test]
    fn budgets_are_charged_atomically_at_admission() {
        let reg = SaeRegistry::new();
        reg.register(SaeProfile::new("capped", "tok").with_cap(RateCap {
            max_requests: 3,
            max_key_bits: 1000,
        }))
        .unwrap();
        reg.admit("capped", 600).unwrap();
        // Key-bit budget would overflow: nothing is charged, so a smaller
        // request still fits afterwards.
        assert!(matches!(
            reg.admit("capped", 600),
            Err(QkdError::RateLimited { .. })
        ));
        assert_eq!(reg.usage("capped").unwrap(), (1, 600));
        reg.admit("capped", 400).unwrap();
        reg.admit("capped", 0).unwrap();
        // Request budget spent.
        assert!(matches!(
            reg.admit("capped", 0),
            Err(QkdError::RateLimited { .. })
        ));
        assert_eq!(reg.usage("capped").unwrap(), (3, 1000));
        assert!(reg.admit("unknown", 0).is_err());
        assert!(reg.usage("unknown").is_err());
    }

    #[test]
    fn rate_limit_refusals_carry_the_configured_back_off_hint() {
        let reg = SaeRegistry::new();
        reg.register(SaeProfile::new("capped", "tok").with_cap(RateCap::requests(0)))
            .unwrap();
        // Default hint: 0, "the budget never refills".
        match reg.admit("capped", 0) {
            Err(QkdError::RateLimited { retry_after_ms, .. }) => assert_eq!(retry_after_ms, 0),
            other => panic!("expected a rate limit, got {other:?}"),
        }
        reg.set_retry_after_hint(Duration::from_millis(750));
        match reg.admit("capped", 0) {
            Err(QkdError::RateLimited { retry_after_ms, .. }) => assert_eq!(retry_after_ms, 750),
            other => panic!("expected a rate limit, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Entitlement soundness: for any set of registered SAEs and any set
        /// of entitled pairs, `link_for` answers exactly the entitled
        /// orientations and refuses everything else — SAE entitlements can
        /// never cross.
        #[test]
        fn link_for_answers_exactly_the_entitled_pairs(
            n_saes in 2usize..6,
            pairs in collection::vec((0usize..6, 0usize..6, 0usize..4), 0..8),
        ) {
            let reg = SaeRegistry::new();
            let ids: Vec<String> = (0..n_saes).map(|i| format!("sae-{i}")).collect();
            for (i, id) in ids.iter().enumerate() {
                reg.register(SaeProfile::new(id.clone(), format!("tok-{i}"))).unwrap();
            }
            let mut entitled: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for (a, b, link) in pairs {
                if a >= n_saes || b >= n_saes || a == b {
                    continue;
                }
                match reg.entitle(&ids[a], &ids[b], link) {
                    Ok(()) => {
                        entitled.insert((a, b), link);
                        entitled.insert((b, a), link);
                    }
                    Err(_) => {
                        // Refused: the pair was already bound to another link.
                        prop_assert!(entitled.contains_key(&(a, b)));
                    }
                }
            }
            for a in 0..n_saes {
                for b in 0..n_saes {
                    match entitled.get(&(a, b)) {
                        Some(&link) => {
                            prop_assert_eq!(reg.link_for(&ids[a], &ids[b]).unwrap(), link);
                        }
                        None => prop_assert!(matches!(
                            reg.link_for(&ids[a], &ids[b]),
                            Err(QkdError::Unauthorized { .. })
                        )),
                    }
                }
            }
        }
    }
}
