//! A minimal blocking HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Just enough protocol for the key-delivery API: one request per
//! connection (`Connection: close`), bounded header and body sizes, a
//! bounded worker pool fed by an accept thread, and graceful shutdown
//! ([`HttpServer::shutdown`] wakes the accept loop with a loopback connect
//! and joins every thread). No TLS, no keep-alive, no chunked encoding —
//! the transport is deliberately small enough to audit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qkd_types::{QkdError, Result};

use crate::json::Json;

/// Maximum accepted request-head (request line + headers) size.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection socket timeout: a stalled peer cannot pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (query strings are not used by this API).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (JSON for every API response).
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Self {
        Self {
            status,
            body: body.encode().into_bytes(),
            content_type: "application/json",
        }
    }

    /// The standard reason phrase for the codes this server emits.
    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// The request handler run on worker threads.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server: an accept thread feeding a bounded pool of worker
/// threads over a bounded channel (back-pressure: past `2 × workers` queued
/// connections, the accept thread blocks and the listener's kernel backlog
/// absorbs the burst).
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handler` on `workers` threads.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::ChannelError`] when the bind fails and
    /// [`QkdError::InvalidParameter`] for a zero worker count.
    pub fn serve(addr: &str, workers: usize, handler: Handler) -> Result<Self> {
        if workers == 0 {
            return Err(QkdError::invalid_parameter(
                "workers",
                "the server needs at least one worker thread",
            ));
        }
        let listener = TcpListener::bind(addr).map_err(|e| QkdError::ChannelError {
            reason: format!("bind {addr}: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| QkdError::ChannelError {
            reason: format!("local_addr: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(workers * 2);

        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Persistent accept failures (e.g. fd exhaustion) would
                    // otherwise spin this loop at 100% CPU; back off briefly.
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            // `tx` drops here; workers drain the queue and exit.
        });

        let worker_handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        handle_connection(stream, &handler);
                    }
                })
            })
            .collect();

        Ok(Self {
            addr: local,
            stop,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop: a loopback connection makes `incoming()`
        // yield so the thread observes the stop flag. A wildcard bind
        // address (0.0.0.0 / ::) is not connectable on every platform, so
        // aim at loopback on the bound port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serves one connection: parse, dispatch, respond, close.
fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let response = match read_request(&mut stream) {
        Ok(request) => handler(&request),
        Err(status) => Response::json(
            status,
            &Json::Obj(vec![
                ("code".into(), Json::str("invalid")),
                ("message".into(), Json::str("malformed HTTP request")),
            ]),
        ),
    };
    let _ = write_response(&mut stream, &response);
}

/// Reads and parses one request; the error is the HTTP status to answer.
fn read_request(stream: &mut TcpStream) -> std::result::Result<Request, u16> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(found) = find_head_end(&buf) {
            if found > MAX_HEAD_BYTES {
                return Err(413);
            }
            break found;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(413);
        }
        let n = stream.read(&mut chunk).map_err(|_| 400u16)?;
        if n == 0 {
            return Err(400);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| 400u16)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(400u16)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(400u16)?.to_ascii_uppercase();
    let path = parts.next().ok_or(400u16)?.to_string();
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(400);
    }

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(400u16)?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| 400u16)?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(413);
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|_| 400u16)?;
        if n == 0 {
            return Err(400);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        response.status,
        Response::reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| {
            let body = Json::Obj(vec![
                ("method".into(), Json::str(req.method.clone())),
                ("path".into(), Json::str(req.path.clone())),
                ("body_len".into(), Json::num(req.body.len() as u64)),
                (
                    "auth".into(),
                    req.header("Authorization").map_or(Json::Null, Json::str),
                ),
            ]);
            Response::json(200, &body)
        });
        HttpServer::serve("127.0.0.1:0", 2, handler).unwrap()
    }

    fn raw_request(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text
            .split("\r\n\r\n")
            .nth(1)
            .unwrap_or_default()
            .to_string();
        (status, body)
    }

    #[test]
    fn serves_requests_from_multiple_sequential_connections() {
        let server = echo_server();
        let addr = server.local_addr();
        for i in 0..4 {
            let payload = "x".repeat(i * 10);
            let (status, body) = raw_request(
                addr,
                &format!(
                    "POST /echo/{i} HTTP/1.1\r\nHost: x\r\nAuthorization: Bearer t\r\ncontent-length: {}\r\n\r\n{payload}",
                    payload.len()
                ),
            );
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            assert_eq!(doc.get("method").unwrap().as_str(), Some("POST"));
            assert_eq!(
                doc.get("path").unwrap().as_str(),
                Some(format!("/echo/{i}").as_str())
            );
            assert_eq!(doc.get("body_len").unwrap().as_u64(), Some((i * 10) as u64));
            assert_eq!(doc.get("auth").unwrap().as_str(), Some("Bearer t"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_all_served() {
        let server = echo_server();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_request(
                        addr,
                        &format!("GET /client/{i} HTTP/1.1\r\nHost: x\r\n\r\n"),
                    )
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let (status, body) = handle.join().unwrap();
            assert_eq!(status, 200);
            assert!(body.contains(&format!("/client/{i}")));
        }
        server.shutdown();
    }

    #[test]
    fn malformed_and_oversized_requests_get_4xx_answers() {
        let server = echo_server();
        let addr = server.local_addr();
        let (status, _) = raw_request(addr, "NONSENSE\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _) = raw_request(addr, "POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
        assert_eq!(status, 413);
        let (status, _) = raw_request(
            addr,
            &format!(
                "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
                "y".repeat(MAX_HEAD_BYTES)
            ),
        );
        assert_eq!(status, 413);
        // The server still works after abuse.
        let (status, _) = raw_request(addr, "GET /ok HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_stops_serving() {
        let server = echo_server();
        let addr = server.local_addr();
        let (status, _) = raw_request(addr, "GET / HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
        // After shutdown the port no longer accepts (or resets immediately).
        let alive = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                s.read_to_string(&mut buf)
                    .map(|_| !buf.is_empty())
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(!alive, "a shut-down server must not answer");
    }

    #[test]
    fn rejects_zero_workers() {
        let handler: Handler = Arc::new(|_: &Request| Response::json(200, &Json::Null));
        assert!(HttpServer::serve("127.0.0.1:0", 0, handler).is_err());
    }
}
