//! An event-driven HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Just enough protocol for the key-delivery API, but built to hold
//! thousands of mostly-idle SAE connections at once: an accept thread
//! deals non-blocking sockets round-robin to a small set of *shard*
//! threads, and each shard owns a connection table it scans — reading
//! whatever bytes are ready, serving every complete pipelined request in a
//! connection's buffer, and harvesting connections that have sat idle past
//! the configured timeout. Connections are kept alive across requests
//! (HTTP/1.1 semantics; `Connection: close` is honored), request heads and
//! bodies are size-bounded, and shutdown ([`HttpServer::shutdown`]) wakes
//! the accept loop with a loopback connect and joins every thread. No TLS,
//! no chunked encoding — the transport is deliberately small enough to
//! audit.
//!
//! The trade-off versus an OS readiness queue (`epoll`/`kqueue`, which the
//! dependency-free build cannot reach): shards poll their tables with a
//! short adaptive sleep when nothing is ready, costing a bounded trickle
//! of wakeups while idle in exchange for zero per-connection threads and
//! no platform bindings.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qkd_types::{QkdError, Result};

use crate::json::Json;
use crate::router::Router;

/// Maximum accepted request-head (request line + headers) size.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Budget for flushing one response to a peer that stops reading.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Shortest sleep of a shard whose scan made no progress; backs off
/// geometrically to [`MAX_POLL_SLEEP`] while the table stays quiet.
const MIN_POLL_SLEEP: Duration = Duration::from_micros(200);
/// Longest sleep between idle scans (also bounds shutdown latency).
const MAX_POLL_SLEEP: Duration = Duration::from_millis(5);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (query strings are not used by this API).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the request asked to drop the connection after the response.
    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (JSON for every API response).
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Self {
        Self {
            status,
            body: body.encode().into_bytes(),
            content_type: "application/json",
        }
    }

    /// The standard reason phrase for the codes this server emits.
    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Transport tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Shard threads; each owns an independent connection table, so this
    /// bounds both service parallelism and per-scan table length.
    pub shards: usize,
    /// Connections with no traffic for this long are harvested (closed and
    /// dropped from the table), reclaiming their descriptor and memory.
    pub idle_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Live transport counters, shared by every shard. Monotonic over the
/// server's lifetime; the values live on the global `qkd-obs` registry
/// (labelled `server="s<N>"` per server instance, so concurrent servers in
/// one process keep exact independent series) and this struct is just the
/// typed accessor over those handles.
#[derive(Debug)]
pub struct ServerStats {
    accepted: qkd_obs::Counter,
    served: qkd_obs::Counter,
    harvested: qkd_obs::Counter,
    /// Live keep-alive connection-table size, summed over every shard.
    connections: qkd_obs::Gauge,
}

impl Default for ServerStats {
    fn default() -> Self {
        let server = qkd_obs::next_instance("s");
        let labels = [("server", server.as_str())];
        let obs = qkd_obs::registry();
        Self {
            accepted: obs.counter("qkd_http_connections_accepted_total", &labels),
            served: obs.counter("qkd_http_requests_served_total", &labels),
            harvested: obs.counter("qkd_http_connections_harvested_total", &labels),
            connections: obs.gauge("qkd_http_connection_table_size", &labels),
        }
    }
}

impl ServerStats {
    /// Connections accepted since start.
    pub fn connections_accepted(&self) -> u64 {
        self.accepted.value()
    }

    /// Requests served (including error responses) since start.
    pub fn requests_served(&self) -> u64 {
        self.served.value()
    }

    /// Connections closed by the idle harvester since start.
    pub fn connections_harvested(&self) -> u64 {
        self.harvested.value()
    }

    /// Connections currently tracked across every shard's table.
    pub fn connections_tracked(&self) -> f64 {
        self.connections.value()
    }
}

/// A running HTTP server: one accept thread dealing connections to
/// [`HttpConfig::shards`] shard threads, each scanning its own table.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept: Option<std::thread::JoinHandle<()>>,
    shards: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// dispatching requests to `router`.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::ChannelError`] when the bind fails and
    /// [`QkdError::InvalidParameter`] for a zero shard count.
    pub fn serve(addr: &str, config: &HttpConfig, router: Arc<Router>) -> Result<Self> {
        if config.shards == 0 {
            return Err(QkdError::invalid_parameter(
                "shards",
                "the server needs at least one shard thread",
            ));
        }
        let listener = TcpListener::bind(addr).map_err(|e| QkdError::ChannelError {
            reason: format!("bind {addr}: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| QkdError::ChannelError {
            reason: format!("local_addr: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let mut txs = Vec::with_capacity(config.shards);
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
            txs.push(tx);
            let router = Arc::clone(&router);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let idle_timeout = config.idle_timeout;
            shards.push(std::thread::spawn(move || {
                run_shard(&rx, &router, &stats, &stop, idle_timeout);
            }));
        }

        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let accept = std::thread::spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        accept_stats.accepted.inc();
                        // Deal round-robin; a send only fails when the
                        // server is tearing down, so stop accepting then.
                        let shard = next % txs.len();
                        next = next.wrapping_add(1);
                        if txs[shard].send(stream).is_err() {
                            break;
                        }
                    }
                    // Persistent accept failures (e.g. fd exhaustion) would
                    // otherwise spin this loop at 100% CPU; back off briefly.
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            // `txs` drop here; shards also watch the stop flag.
        });

        Ok(Self {
            addr: local,
            stop,
            stats,
            accept: Some(accept),
            shards,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live transport counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drops every tracked connection and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// In-place variant of [`HttpServer::shutdown`] for owners that cannot
    /// move the server out (e.g. types with their own `Drop`).
    pub(crate) fn stop(&mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop: a loopback connection makes `incoming()`
        // yield so the thread observes the stop flag. A wildcard bind
        // address (0.0.0.0 / ::) is not connectable on every platform, so
        // aim at loopback on the bound port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Per-connection state tracked by a shard: the socket, the receive
/// buffer, the parse offset separating served from pending bytes, and the
/// last-activity clock the idle harvester reads.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    parsed: usize,
    last_activity: Instant,
}

enum Scan {
    /// Bytes moved (or a request was served); keep the connection.
    Progress,
    /// Nothing ready; keep the connection.
    Idle,
    /// Peer closed, errored, asked to close, or overflowed a bound.
    Close,
    /// Idle past the timeout: close and count as harvested.
    Harvest,
}

/// One shard: drains its intake channel into a connection table and scans
/// the table until the server stops.
fn run_shard(
    rx: &crossbeam::channel::Receiver<TcpStream>,
    router: &Router,
    stats: &ServerStats,
    stop: &AtomicBool,
    idle_timeout: Duration,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut sleep = MIN_POLL_SLEEP;
    loop {
        let mut progress = false;
        while let Some(stream) = rx.try_recv() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            conns.push(Conn {
                stream,
                buf: Vec::new(),
                parsed: 0,
                last_activity: Instant::now(),
            });
            stats.connections.add(1.0);
            progress = true;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            match scan_conn(&mut conns[i], &mut chunk, router, stats, now, idle_timeout) {
                Scan::Progress => {
                    progress = true;
                    i += 1;
                }
                Scan::Idle => i += 1,
                Scan::Close => {
                    conns.swap_remove(i);
                    stats.connections.add(-1.0);
                    progress = true;
                }
                Scan::Harvest => {
                    stats.harvested.inc();
                    conns.swap_remove(i);
                    stats.connections.add(-1.0);
                    progress = true;
                }
            }
        }
        if progress {
            sleep = MIN_POLL_SLEEP;
        } else {
            std::thread::sleep(sleep);
            sleep = (sleep * 2).min(MAX_POLL_SLEEP);
        }
    }
    // Tracked connections drop (and close) here.
    stats.connections.add(-(conns.len() as f64));
}

/// Services one connection for one scan: read what is ready, serve every
/// complete pipelined request, compact the buffer.
fn scan_conn(
    conn: &mut Conn,
    chunk: &mut [u8],
    router: &Router,
    stats: &ServerStats,
    now: Instant,
    idle_timeout: Duration,
) -> Scan {
    let mut read_any = false;
    loop {
        // Stop pulling once a full oversized head/body is already buffered;
        // the parse below answers 413 without letting the peer grow the
        // buffer without bound.
        if conn.buf.len() - conn.parsed > MAX_HEAD_BYTES + MAX_BODY_BYTES {
            break;
        }
        match conn.stream.read(chunk) {
            Ok(0) => return Scan::Close,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                read_any = true;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Scan::Close,
        }
    }
    if !read_any {
        if now.duration_since(conn.last_activity) >= idle_timeout {
            return Scan::Harvest;
        }
        return Scan::Idle;
    }
    conn.last_activity = now;

    // Serve every complete request already in the buffer (pipelining).
    let outcome = loop {
        match parse_request(&conn.buf[conn.parsed..]) {
            Ok(Some((request, consumed))) => {
                conn.parsed += consumed;
                stats.served.inc();
                let close = request.wants_close();
                let response = dispatch(router, &request);
                if write_response(&mut conn.stream, &response, close).is_err() || close {
                    break Scan::Close;
                }
            }
            Ok(None) => break Scan::Progress,
            Err(status) => {
                stats.served.inc();
                let response = Response::json(
                    status,
                    &Json::Obj(vec![
                        ("code".into(), Json::str("invalid")),
                        ("message".into(), Json::str("malformed HTTP request")),
                    ]),
                );
                let _ = write_response(&mut conn.stream, &response, true);
                break Scan::Close;
            }
        }
    };
    if conn.parsed > 0 {
        conn.buf.drain(..conn.parsed);
        conn.parsed = 0;
    }
    outcome
}

/// Runs the router, converting a handler panic into a 500 envelope so one
/// poisoned request cannot take a shard (and its whole table) down.
fn dispatch(router: &Router, request: &Request) -> Response {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.dispatch(request)))
        .unwrap_or_else(|_| {
            Response::json(
                500,
                &Json::Obj(vec![
                    ("code".into(), Json::str("internal")),
                    ("message".into(), Json::str("handler panicked")),
                ]),
            )
        })
}

/// Tries to parse one request from the front of `data`.
///
/// `Ok(Some((request, consumed)))` on a complete request, `Ok(None)` when
/// more bytes are needed, `Err(status)` when the front of the buffer can
/// never become a valid request (the status is the HTTP answer).
fn parse_request(data: &[u8]) -> std::result::Result<Option<(Request, usize)>, u16> {
    let Some(head_end) = find_head_end(data) else {
        if data.len() > MAX_HEAD_BYTES {
            return Err(413);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(413);
    }

    let head = std::str::from_utf8(&data[..head_end]).map_err(|_| 400u16)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(400u16)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(400u16)?.to_ascii_uppercase();
    let path = parts.next().ok_or(400u16)?.to_string();
    if method.is_empty() || !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(400);
    }

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(400u16)?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| 400u16)?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(413);
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if data.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body: data[body_start..total].to_vec(),
        },
        total,
    )))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serializes and writes one response on a non-blocking socket, retrying
/// short writes until [`WRITE_TIMEOUT`]. A peer that stops reading stalls
/// only its own shard's scan for at most that budget, then loses the
/// connection.
fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> std::io::Result<()> {
    let mut bytes = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        Response::reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    )
    .into_bytes();
    bytes.extend_from_slice(&response.body);

    let deadline = Instant::now() + WRITE_TIMEOUT;
    let mut data = &bytes[..];
    while !data.is_empty() {
        match stream.write(data) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(ErrorKind::TimedOut.into());
                }
                std::thread::sleep(Duration::from_micros(250));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{Method, PathParams};

    fn echo_router() -> Arc<Router> {
        let echo = |req: &Request, params: &PathParams| {
            let body = Json::Obj(vec![
                ("method".into(), Json::str(req.method.clone())),
                ("path".into(), Json::str(req.path.clone())),
                ("tag".into(), Json::str(params.get("tag").unwrap_or(""))),
                ("body_len".into(), Json::num(req.body.len() as u64)),
                (
                    "auth".into(),
                    req.header("Authorization").map_or(Json::Null, Json::str),
                ),
            ]);
            Response::json(200, &body)
        };
        Arc::new(
            Router::new()
                .route(Method::Get, "/echo/{tag}", echo)
                .unwrap()
                .route(Method::Post, "/echo/{tag}", echo)
                .unwrap(),
        )
    }

    fn serve(config: &HttpConfig) -> HttpServer {
        HttpServer::serve("127.0.0.1:0", config, echo_router()).unwrap()
    }

    /// Reads exactly one response (headers + content-length body) from
    /// `stream`, carrying excess bytes (the next pipelined response) over
    /// in `buf` — so the helper works on kept-alive connections.
    fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String) {
        let mut chunk = [0u8; 4096];
        let (head_end, status, content_length) = loop {
            if let Some(end) = find_head_end(buf) {
                let head = std::str::from_utf8(&buf[..end]).unwrap();
                let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
                let content_length: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length: "))
                    .unwrap()
                    .parse()
                    .unwrap();
                break (end, status, content_length);
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "peer closed before a full response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        while buf.len() < head_end + 4 + content_length {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "peer closed before a full response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let body = buf[head_end + 4..head_end + 4 + content_length].to_vec();
        buf.drain(..head_end + 4 + content_length);
        (status, String::from_utf8(body).unwrap())
    }

    /// One request over a fresh connection, asking the server to close.
    fn raw_request(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        stream.write_all(request.as_bytes()).unwrap();
        read_one_response(&mut stream, &mut Vec::new())
    }

    #[test]
    fn serves_requests_from_multiple_sequential_connections() {
        let server = serve(&HttpConfig::default());
        let addr = server.local_addr();
        for i in 0..4 {
            let payload = "x".repeat(i * 10);
            let (status, body) = raw_request(
                addr,
                &format!(
                    "POST /echo/{i} HTTP/1.1\r\nHost: x\r\nAuthorization: Bearer t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
                    payload.len()
                ),
            );
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            assert_eq!(doc.get("method").unwrap().as_str(), Some("POST"));
            assert_eq!(
                doc.get("tag").unwrap().as_str(),
                Some(i.to_string().as_str())
            );
            assert_eq!(doc.get("body_len").unwrap().as_u64(), Some((i * 10) as u64));
            assert_eq!(doc.get("auth").unwrap().as_str(), Some("Bearer t"));
        }
        assert_eq!(server.stats().connections_accepted(), 4);
        assert_eq!(server.stats().requests_served(), 4);
        server.shutdown();
    }

    #[test]
    fn one_connection_serves_many_requests_and_pipelines() {
        let server = serve(&HttpConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut carry = Vec::new();
        // Sequential keep-alive round trips on the same socket.
        for i in 0..5 {
            stream
                .write_all(format!("GET /echo/seq{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let (status, body) = read_one_response(&mut stream, &mut carry);
            assert_eq!(status, 200);
            assert!(body.contains(&format!("seq{i}")));
        }
        // A burst of pipelined requests written back-to-back: responses
        // come back complete and in order.
        let burst: String = (0..8)
            .map(|i| format!("GET /echo/pipe{i} HTTP/1.1\r\nHost: x\r\n\r\n"))
            .collect();
        stream.write_all(burst.as_bytes()).unwrap();
        for i in 0..8 {
            let (status, body) = read_one_response(&mut stream, &mut carry);
            assert_eq!(status, 200);
            assert!(body.contains(&format!("pipe{i}")), "response {i}: {body}");
        }
        // All thirteen requests rode one accepted connection.
        assert_eq!(server.stats().connections_accepted(), 1);
        assert_eq!(server.stats().requests_served(), 13);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_all_served() {
        let server = serve(&HttpConfig::default());
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_request(
                        addr,
                        &format!(
                            "GET /echo/client{i} HTTP/1.1\r\nHost: x\r\nconnection: close\r\n\r\n"
                        ),
                    )
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let (status, body) = handle.join().unwrap();
            assert_eq!(status, 200);
            assert!(body.contains(&format!("client{i}")));
        }
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_harvested_and_the_server_stays_healthy() {
        let server = serve(&HttpConfig {
            shards: 2,
            idle_timeout: Duration::from_millis(50),
        });
        let addr = server.local_addr();
        // A connection that sends nothing is closed by the harvester…
        let mut stale = TcpStream::connect(addr).unwrap();
        let _ = stale.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = [0u8; 16];
        let harvested = matches!(stale.read(&mut buf), Ok(0) | Err(_));
        assert!(harvested, "the stale connection must be closed");
        assert!(server.stats().connections_harvested() >= 1);
        // …and the server keeps serving fresh traffic afterwards.
        let (status, _) = raw_request(
            addr,
            "GET /echo/after HTTP/1.1\r\nHost: x\r\nconnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn malformed_and_oversized_requests_get_4xx_answers() {
        let server = serve(&HttpConfig::default());
        let addr = server.local_addr();
        let (status, _) = raw_request(addr, "NONSENSE\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _) = raw_request(
            addr,
            "POST /echo/x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
        );
        assert_eq!(status, 413);
        let (status, _) = raw_request(
            addr,
            &format!(
                "GET /echo/x HTTP/1.1\r\nx: {}\r\n\r\n",
                "y".repeat(MAX_HEAD_BYTES)
            ),
        );
        assert_eq!(status, 413);
        // The server still works after abuse.
        let (status, _) = raw_request(addr, "GET /echo/ok HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_stops_serving() {
        let server = serve(&HttpConfig::default());
        let addr = server.local_addr();
        let (status, _) = raw_request(addr, "GET /echo/x HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
        // After shutdown the port no longer accepts (or resets immediately).
        let alive = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = s.write_all(b"GET /echo/x HTTP/1.1\r\nconnection: close\r\n\r\n");
                let mut buf = String::new();
                s.read_to_string(&mut buf)
                    .map(|_| !buf.is_empty())
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(!alive, "a shut-down server must not answer");
    }

    #[test]
    fn rejects_zero_shards() {
        let config = HttpConfig {
            shards: 0,
            ..HttpConfig::default()
        };
        assert!(HttpServer::serve("127.0.0.1:0", &config, echo_router()).is_err());
    }
}
