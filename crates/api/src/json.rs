//! A minimal JSON document model with a hand-rolled encoder and decoder.
//!
//! The vendored `serde` stand-in has no JSON backend and the build
//! environment has no registry access, so the delivery API carries its own
//! wire format: a [`Json`] tree, [`Json::parse`] (recursive descent with a
//! depth limit) and [`Json::encode`]. Object member order is preserved, so
//! encoded documents are deterministic.

use qkd_types::{QkdError, Result};

/// Maximum nesting depth accepted by the parser (the delivery API's
/// documents are at most three levels deep).
const MAX_DEPTH: usize = 32;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; integers survive below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

fn parse_error(at: usize, what: impl std::fmt::Display) -> QkdError {
    QkdError::ChannelError {
        reason: format!("json parse error at byte {at}: {what}"),
    }
}

impl Json {
    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(x) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::ChannelError`] describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(parse_error(pos, "trailing characters after the document"));
        }
        Ok(value)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, literal: &str, value: Json) -> Result<Json> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(parse_error(*pos, format!("expected `{literal}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json> {
    if depth > MAX_DEPTH {
        return Err(parse_error(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(parse_error(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null", Json::Null),
        Some(b't') => expect(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(parse_error(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(parse_error(*pos, "expected `:`"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(parse_error(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(parse_error(*pos, "expected a string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(parse_error(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        // Decode a surrogate pair when one follows; a lone
                        // surrogate is replaced rather than rejected.
                        if (0xD800..0xDC00).contains(&code)
                            && bytes.get(*pos + 5) == Some(&b'\\')
                            && bytes.get(*pos + 6) == Some(&b'u')
                        {
                            let low = parse_hex4(bytes, *pos + 7)?;
                            if (0xDC00..0xE000).contains(&low) {
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                // `u` + 4 hex + `\u` + 4 hex.
                                *pos += 11;
                                continue;
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 5;
                        continue;
                    }
                    _ => return Err(parse_error(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(parse_error(*pos, "raw control character in string"))
            }
            Some(_) => {
                // Copy one UTF-8 character (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("input was a &str"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32> {
    let hex = bytes
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| parse_error(at, "truncated \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| parse_error(at, "invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number characters");
    text.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or_else(|| parse_error(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_document_shapes_the_api_uses() {
        let doc = Json::Obj(vec![
            ("number".into(), Json::num(3)),
            ("size".into(), Json::num(256)),
            (
                "keys".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("key_ID".into(), Json::str("link0/key7")),
                    ("key".into(), Json::str("q2V5cw==")),
                    ("empty".into(), Json::Null),
                    ("ok".into(), Json::Bool(true)),
                ])]),
            ),
            ("rate".into(), Json::Num(0.25)),
        ]);
        let text = doc.encode();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("number").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(doc.get("keys").unwrap().as_array().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let doc = Json::parse(
            " { \"a\" : [ 1 , -2.5e1 , \"x\\n\\t\\\"\\\\\\u00e9\\ud83d\\ude00\" ] , \"b\" : { } } ",
        )
        .unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x\n\t\"\\é😀"));
        assert_eq!(doc.get("b").unwrap(), &Json::Obj(vec![]));
        // Encoding escapes what must be escaped and survives a reparse.
        let reencoded = doc.encode();
        assert_eq!(Json::parse(&reencoded).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01a",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{\"a\":1} trailing",
            "1e999",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
        // Nesting past the depth limit is rejected, not a stack overflow.
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integer_precision_is_preserved_below_2_pow_53() {
        let n = (1u64 << 53) - 1;
        let doc = Json::num(n);
        assert_eq!(Json::parse(&doc.encode()).unwrap().as_u64(), Some(n));
        // Negative and fractional numbers are not u64s.
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
