//! ETSI GS QKD 014-shaped key-delivery API: a networked front-end for the
//! fleet key store.
//!
//! The fleet manager (`qkd-manager`) distils secret key into an in-process
//! [`qkd_manager::KeyStore`]; this crate puts that store on the network the
//! way industrial QKD deployments expose it (Kiktenko et al.,
//! *Post-processing procedure for industrial QKD systems*): a small REST
//! service shaped after ETSI GS QKD 014, with authenticated SAE consumers,
//! per-pair entitlements and a master/slave delivery flow in which no key
//! bit ever crosses the boundary twice.
//!
//! Since the vendored dependency set has neither an HTTP nor a JSON crate,
//! the transport is self-contained:
//!
//! * [`json`] — a hand-rolled JSON tree, parser and encoder;
//! * [`http`] — an event-driven HTTP/1.1 server over
//!   `std::net::TcpListener`: sharded connection tables, keep-alive with
//!   request pipelining, idle-connection harvesting, graceful shutdown;
//! * [`router`] — typed routing: [`router::Method`], path patterns with
//!   `{param}` captures, the [`router::Handler`] trait and the
//!   [`Router`] dispatch table (404 vs 405 telling);
//! * [`sae`] — SAE identities, bearer-token authentication, pair → link
//!   entitlements and per-SAE budgets ([`SaeRegistry`]);
//! * [`server`] — the three 014 endpoints (`status`, `enc_keys`,
//!   `dec_keys`) registered on a [`Router`] in front of an
//!   `Arc<KeyStore>` ([`ApiServer`]), plus the reservation-TTL sweeper;
//! * [`client`] — a blocking [`ApiClient`] speaking the same wire format
//!   over real sockets, reusing one kept-alive connection across calls;
//! * [`wire`] — base64 key containers and the error envelope that
//!   round-trips [`qkd_types::QkdError`] values across the HTTP boundary.
//!
//! # Delivery flow
//!
//! The master SAE calls `enc_keys`, which *reserves* key material: the bits
//! are drained from the store exactly once (`KeyStore::reserve_keys`) and
//! returned together with their `key_ID`s, while a copy of each key is
//! parked for the peer under the slave's identity. The slave SAE then calls
//! `dec_keys` with those `key_ID`s and receives bit-identical material
//! (`KeyStore::get_key_by_id`), each ID redeemable exactly once and only by
//! the SAE it was reserved for — another pair sharing the link, or the
//! master itself, gets the same answer as for a non-existent ID. The
//! store's ledger (`deposited = delivered + available`) and
//! `LinkManager::reconcile` are unaffected by pickups — the parked copy is
//! the other half of one delivery, not a second one.
//!
//! Reservations park at most [`ApiConfig::reservation_ttl`] long: a
//! background sweeper periodically calls
//! `KeyStore::expire_reservations`, returning uncollected bits to the
//! available pool (the ledger still balances; the expired IDs answer like
//! never-reserved ones).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod http;
pub mod json;
pub mod router;
pub mod sae;
pub mod server;
pub mod wire;

pub use client::{ApiClient, PeerStatus};
pub use http::{HttpConfig, HttpServer, ServerStats};
pub use json::Json;
pub use router::{Method, PathParams, Route, Router};
pub use sae::{RateCap, SaeProfile, SaeRegistry};
pub use server::{ApiConfig, ApiServer};
pub use wire::WireKey;
