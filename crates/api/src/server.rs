//! The ETSI GS QKD 014-shaped key-delivery server.
//!
//! Three endpoints, rooted at `/api/v1/keys`:
//!
//! | Method | Path                          | Purpose |
//! |--------|-------------------------------|---------|
//! | GET    | `/api/v1/keys/{slave}/status`   | store status for the caller/`{slave}` pair |
//! | POST   | `/api/v1/keys/{slave}/enc_keys` | master: reserve keys, receive bits + `key_ID`s |
//! | POST   | `/api/v1/keys/{master}/dec_keys`| slave: retrieve the same bits by `key_ID` |
//!
//! Every request authenticates with `Authorization: Bearer <token>` against
//! the [`SaeRegistry`]; the pair (caller, addressed SAE) resolves to one
//! fleet link, and a missing entitlement is refused with a 401 envelope.
//! `enc_keys` drains the store once (the delivery); `dec_keys` retrieves the
//! parked peer copy exactly once — so no key bit ever crosses the boundary
//! twice.

use std::net::SocketAddr;
use std::sync::Arc;

use qkd_manager::{KeyId, KeyStore};
use qkd_types::{QkdError, Result};

use crate::http::{Handler, HttpServer, Request, Response};
use crate::json::Json;
use crate::sae::SaeRegistry;
use crate::wire::{error_to_json, key_to_json};

/// Tuning knobs of the delivery server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Key size in bits when an `enc_keys` request names none.
    pub default_key_size: usize,
    /// Largest accepted key size in bits.
    pub max_key_size: usize,
    /// Most keys one `enc_keys`/`dec_keys` request may move.
    pub max_keys_per_request: usize,
}

impl Default for ApiConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            default_key_size: 256,
            max_key_size: 4096,
            max_keys_per_request: 128,
        }
    }
}

impl ApiConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when a knob is zero or the
    /// default key size exceeds the maximum.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("workers", self.workers),
            ("default_key_size", self.default_key_size),
            ("max_key_size", self.max_key_size),
            ("max_keys_per_request", self.max_keys_per_request),
        ] {
            if value == 0 {
                return Err(QkdError::invalid_parameter(name, "must be at least one"));
            }
        }
        if self.default_key_size > self.max_key_size {
            return Err(QkdError::invalid_parameter(
                "default_key_size",
                "cannot exceed max_key_size",
            ));
        }
        Ok(())
    }
}

/// A running key-delivery server in front of one fleet [`KeyStore`].
#[derive(Debug)]
pub struct ApiServer {
    http: HttpServer,
}

impl ApiServer {
    /// Starts serving `store` under the identities and entitlements of
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for an invalid config and
    /// [`QkdError::ChannelError`] when the bind fails.
    pub fn start(
        store: Arc<KeyStore>,
        registry: Arc<SaeRegistry>,
        config: ApiConfig,
    ) -> Result<Self> {
        config.validate()?;
        let addr = config.addr.clone();
        let workers = config.workers;
        let handler: Handler =
            Arc::new(
                move |request: &Request| match route(request, &store, &registry, &config) {
                    Ok(body) => Response::json(200, &body),
                    Err(RouteError::Api(e)) => {
                        let (status, body) = error_to_json(&e);
                        Response::json(status, &body)
                    }
                    Err(RouteError::Http {
                        status,
                        code,
                        message,
                    }) => Response::json(
                        status,
                        &Json::Obj(vec![
                            ("code".into(), Json::str(code)),
                            ("message".into(), Json::str(message)),
                        ]),
                    ),
                },
            );
        Ok(Self {
            http: HttpServer::serve(&addr, workers, handler)?,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, join.
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

/// Why a request could not be dispatched: an API-level [`QkdError`] (which
/// carries its own status mapping) or a pure HTTP routing miss (404/405),
/// which has no `QkdError` representation.
enum RouteError {
    Api(QkdError),
    Http {
        status: u16,
        code: &'static str,
        message: String,
    },
}

impl From<QkdError> for RouteError {
    fn from(e: QkdError) -> Self {
        RouteError::Api(e)
    }
}

/// Parses `/api/v1/keys/{sae}/{endpoint}` and dispatches.
fn route(
    request: &Request,
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
) -> std::result::Result<Json, RouteError> {
    let token = request
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "));
    let caller = registry.authenticate(token)?;

    let segments: Vec<&str> = request.path.trim_matches('/').split('/').collect();
    let (peer, endpoint) = match segments.as_slice() {
        ["api", "v1", "keys", peer, endpoint @ ("status" | "enc_keys" | "dec_keys")] => {
            (peer.to_string(), *endpoint)
        }
        _ => {
            return Err(RouteError::Http {
                status: 404,
                code: "not_found",
                message: format!("no such route: {}", request.path),
            })
        }
    };

    let body = if request.body.is_empty() {
        Json::Null
    } else {
        Json::parse(
            std::str::from_utf8(&request.body).map_err(|_| QkdError::ChannelError {
                reason: "request body is not UTF-8".into(),
            })?,
        )?
    };

    let result = match (request.method.as_str(), endpoint) {
        ("GET", "status") => status(store, registry, config, &caller, &peer),
        ("POST", "enc_keys") => enc_keys(store, registry, config, &caller, &peer, &body),
        ("POST", "dec_keys") => dec_keys(store, registry, config, &caller, &peer, &body),
        _ => {
            return Err(RouteError::Http {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} is not valid for {endpoint}", request.method),
            })
        }
    };
    result.map_err(RouteError::Api)
}

/// `GET /api/v1/keys/{slave}/status`
fn status(
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
    caller: &str,
    peer: &str,
) -> Result<Json> {
    let link = registry.link_for(caller, peer)?;
    registry.admit(caller, 0)?;
    let status = store.status(link)?;
    Ok(Json::Obj(vec![
        ("source_KME_ID".into(), Json::str("kme-fleet")),
        ("target_KME_ID".into(), Json::str("kme-fleet")),
        ("master_SAE_ID".into(), Json::str(caller)),
        ("slave_SAE_ID".into(), Json::str(peer)),
        ("link".into(), Json::num(link as u64)),
        ("key_size".into(), Json::num(config.default_key_size as u64)),
        (
            "stored_key_count".into(),
            Json::num(status.available_bits / config.default_key_size as u64),
        ),
        (
            "max_key_per_request".into(),
            Json::num(config.max_keys_per_request as u64),
        ),
        ("max_key_size".into(), Json::num(config.max_key_size as u64)),
        ("min_key_size".into(), Json::num(1)),
        ("available_bits".into(), Json::num(status.available_bits)),
        ("delivered_bits".into(), Json::num(status.delivered_bits)),
        ("reserved_keys".into(), Json::num(status.reserved_keys)),
    ]))
}

/// `POST /api/v1/keys/{slave}/enc_keys`
fn enc_keys(
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
    caller: &str,
    slave: &str,
    body: &Json,
) -> Result<Json> {
    let number = match body.get("number") {
        None => 1,
        Some(v) => v.as_u64().ok_or_else(|| {
            QkdError::invalid_parameter("number", "must be a non-negative integer")
        })? as usize,
    };
    let size = match body.get("size") {
        None => config.default_key_size,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| QkdError::invalid_parameter("size", "must be a non-negative integer"))?
            as usize,
    };
    if number == 0 || number > config.max_keys_per_request {
        return Err(QkdError::invalid_parameter(
            "number",
            format!("must lie in 1..={}", config.max_keys_per_request),
        ));
    }
    if size == 0 || size > config.max_key_size {
        return Err(QkdError::invalid_parameter(
            "size",
            format!("must lie in 1..={} bits", config.max_key_size),
        ));
    }
    let link = registry.link_for(caller, slave)?;
    registry.admit(caller, (number * size) as u64)?;
    // The reservation is claimed by the slave's identity: even another SAE
    // pair entitled to the same link (or the master itself) cannot redeem
    // it via `dec_keys`.
    let keys = store.reserve_keys(link, number, size, Some(slave))?;
    Ok(Json::Obj(vec![(
        "keys".into(),
        Json::Arr(keys.iter().map(key_to_json).collect()),
    )]))
}

/// `POST /api/v1/keys/{master}/dec_keys`
fn dec_keys(
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
    caller: &str,
    master: &str,
    body: &Json,
) -> Result<Json> {
    let containers = body
        .get("key_IDs")
        .and_then(Json::as_array)
        .ok_or_else(|| QkdError::invalid_parameter("key_IDs", "must be an array"))?;
    if containers.is_empty() || containers.len() > config.max_keys_per_request {
        return Err(QkdError::invalid_parameter(
            "key_IDs",
            format!("must name 1..={} keys", config.max_keys_per_request),
        ));
    }
    let link = registry.link_for(caller, master)?;
    let mut ids = Vec::with_capacity(containers.len());
    for container in containers {
        let id: KeyId = container
            .get("key_ID")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                QkdError::invalid_parameter("key_IDs", "each entry needs a string `key_ID`")
            })?
            .parse()?;
        // A key ID addressing another link is an entitlement violation, not
        // a lookup miss: the caller may not even probe foreign links.
        if id.link != link {
            return Err(QkdError::Unauthorized {
                reason: format!("key {id} does not belong to the ({caller}, {master}) pair"),
            });
        }
        ids.push(id);
    }
    registry.admit(caller, 0)?;
    // Pickups redeem under the caller's own identity: only the SAE the
    // reservation was made for can collect it (a mismatch reads exactly
    // like an unknown ID).
    let keys = store.get_keys_by_id(&ids, Some(caller))?;
    Ok(Json::Obj(vec![(
        "keys".into(),
        Json::Arr(keys.iter().map(key_to_json).collect()),
    )]))
}
