//! The ETSI GS QKD 014-shaped key-delivery server.
//!
//! Three endpoints, registered against the typed [`Router`]:
//!
//! | Method | Pattern                          | Purpose |
//! |--------|----------------------------------|---------|
//! | GET    | `/api/v1/keys/{slave}/status`    | store status for the caller/`{slave}` pair |
//! | POST   | `/api/v1/keys/{slave}/enc_keys`  | master: reserve keys, receive bits + `key_ID`s |
//! | POST   | `/api/v1/keys/{master}/dec_keys` | slave: retrieve the same bits by `key_ID` |
//! | GET    | `/api/v1/metrics`                | process telemetry, Prometheus text format |
//! | GET    | `/api/v1/metrics.json`           | the same snapshot as JSON (quantiles + events) |
//!
//! Every request authenticates with `Authorization: Bearer <token>` against
//! the [`SaeRegistry`]; the pair (caller, addressed SAE) resolves to one
//! fleet link, and a missing entitlement is refused with a 401 envelope.
//! `enc_keys` drains the store once (the delivery); `dec_keys` retrieves the
//! parked peer copy exactly once — so no key bit ever crosses the boundary
//! twice.
//!
//! Reservations made through `enc_keys` carry the configured TTL
//! ([`ApiConfig::reservation_ttl`]); a background sweeper thread calls
//! [`KeyStore::expire_reservations`] every [`ApiConfig::sweep_interval`],
//! so keys a slow or dead slave never collects return to the available
//! pool (the ledger and `reconcile()` stay balanced bit-for-bit, and the
//! expired IDs answer like never-reserved ones).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qkd_manager::{KeyId, KeyStore};
use qkd_types::{QkdError, Result};

use crate::http::{HttpConfig, HttpServer, Request, Response, ServerStats};
use crate::json::Json;
use crate::router::{Method, PathParams, Router};
use crate::sae::SaeRegistry;
use crate::wire::{error_to_json, key_to_json};

/// Tuning knobs of the delivery server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Shard threads, each tracking its own slice of the connections.
    pub shards: usize,
    /// Key size in bits when an `enc_keys` request names none.
    pub default_key_size: usize,
    /// Largest accepted key size in bits.
    pub max_key_size: usize,
    /// Most keys one `enc_keys`/`dec_keys` request may move.
    pub max_keys_per_request: usize,
    /// How long a reservation waits for its `dec_keys` pickup before the
    /// sweeper reclaims it into the available pool. `None` parks forever
    /// (the pre-TTL behavior).
    pub reservation_ttl: Option<Duration>,
    /// Cadence of the reservation sweeper (only spawned when
    /// `reservation_ttl` is set).
    pub sweep_interval: Duration,
    /// Connections idle for this long are harvested by their shard.
    pub idle_timeout: Duration,
}

impl Default for ApiConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            default_key_size: 256,
            max_key_size: 4096,
            max_keys_per_request: 128,
            reservation_ttl: Some(Duration::from_secs(60)),
            sweep_interval: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl ApiConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when a knob is zero or the
    /// default key size exceeds the maximum.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("shards", self.shards),
            ("default_key_size", self.default_key_size),
            ("max_key_size", self.max_key_size),
            ("max_keys_per_request", self.max_keys_per_request),
        ] {
            if value == 0 {
                return Err(QkdError::invalid_parameter(name, "must be at least one"));
            }
        }
        if self.default_key_size > self.max_key_size {
            return Err(QkdError::invalid_parameter(
                "default_key_size",
                "cannot exceed max_key_size",
            ));
        }
        for (name, value) in [
            ("sweep_interval", self.sweep_interval),
            ("idle_timeout", self.idle_timeout),
        ] {
            if value.is_zero() {
                return Err(QkdError::invalid_parameter(name, "must be non-zero"));
            }
        }
        if self.reservation_ttl.is_some_and(|t| t.is_zero()) {
            return Err(QkdError::invalid_parameter(
                "reservation_ttl",
                "must be non-zero (use None to park forever)",
            ));
        }
        Ok(())
    }
}

/// A running key-delivery server in front of one fleet [`KeyStore`].
#[derive(Debug)]
pub struct ApiServer {
    http: HttpServer,
    sweeper_stop: Arc<AtomicBool>,
    sweeper: Option<std::thread::JoinHandle<()>>,
}

impl ApiServer {
    /// Starts serving `store` under the identities and entitlements of
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for an invalid config and
    /// [`QkdError::ChannelError`] when the bind fails.
    pub fn start(
        store: Arc<KeyStore>,
        registry: Arc<SaeRegistry>,
        config: ApiConfig,
    ) -> Result<Self> {
        config.validate()?;
        let http_config = HttpConfig {
            shards: config.shards,
            idle_timeout: config.idle_timeout,
        };
        let router = Arc::new(build_router(
            Arc::clone(&store),
            Arc::clone(&registry),
            config.clone(),
        )?);
        let http = HttpServer::serve(&config.addr, &http_config, router)?;

        let sweeper_stop = Arc::new(AtomicBool::new(false));
        let sweeper = config.reservation_ttl.is_some().then(|| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&sweeper_stop);
            let interval = config.sweep_interval;
            // Sleep in short slices so shutdown never waits out a long
            // sweep interval.
            let slice = interval.min(Duration::from_millis(20));
            std::thread::spawn(move || {
                let mut next_sweep = Instant::now() + interval;
                while !stop.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now >= next_sweep {
                        // A failed sweep (journal refusing the Expire
                        // record) reclaims nothing; the next tick retries
                        // against the same deadlines.
                        let _ = store.expire_reservations(now);
                        next_sweep = now + interval;
                    }
                    std::thread::sleep(slice);
                }
            })
        });

        Ok(Self {
            http,
            sweeper_stop,
            sweeper,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// The transport's live counters (connections accepted/harvested,
    /// requests served).
    pub fn stats(&self) -> &ServerStats {
        self.http.stats()
    }

    /// Graceful shutdown: stop the sweeper and the transport, dropping
    /// every tracked connection, and join all threads.
    pub fn shutdown(mut self) {
        self.stop_sweeper();
        self.http.stop();
    }

    fn stop_sweeper(&mut self) {
        self.sweeper_stop.store(true, Ordering::SeqCst);
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        // `HttpServer` joins its own threads on drop; the sweeper needs
        // the same courtesy when `shutdown` was never called.
        self.stop_sweeper();
    }
}

/// Registers the three 014 endpoints. Each handler owns clones of the
/// shared state, authenticates the caller, parses the body, and maps the
/// endpoint result through the wire error envelope.
fn build_router(
    store: Arc<KeyStore>,
    registry: Arc<SaeRegistry>,
    config: ApiConfig,
) -> Result<Router> {
    let status_handler = {
        let (store, registry, config) = (Arc::clone(&store), Arc::clone(&registry), config.clone());
        move |request: &Request, params: &PathParams| {
            respond(request, params, "slave", &registry, |caller, peer, _| {
                status(&store, &registry, &config, caller, peer)
            })
        }
    };
    let enc_handler = {
        let (store, registry, config) = (Arc::clone(&store), Arc::clone(&registry), config.clone());
        move |request: &Request, params: &PathParams| {
            respond(
                request,
                params,
                "slave",
                &registry,
                |caller, slave, body| enc_keys(&store, &registry, &config, caller, slave, body),
            )
        }
    };
    let dec_handler = {
        move |request: &Request, params: &PathParams| {
            respond(
                request,
                params,
                "master",
                &registry,
                |caller, master, body| dec_keys(&store, &registry, &config, caller, master, body),
            )
        }
    };
    // The exposition endpoints are unauthenticated by design: they carry
    // process telemetry only (counts, timings, fingerprints — never key
    // material; the `qkd-lint` metric-hygiene rule enforces the latter).
    let metrics_handler = |_: &Request, _: &PathParams| Response {
        status: 200,
        body: qkd_obs::registry().render_prometheus().into_bytes(),
        content_type: "text/plain; version=0.0.4",
    };
    let metrics_json_handler = |_: &Request, _: &PathParams| Response {
        status: 200,
        body: qkd_obs::registry().render_json().into_bytes(),
        content_type: "application/json",
    };
    Router::new()
        .route(Method::Get, "/api/v1/keys/{slave}/status", status_handler)?
        .route(Method::Post, "/api/v1/keys/{slave}/enc_keys", enc_handler)?
        .route(Method::Post, "/api/v1/keys/{master}/dec_keys", dec_handler)?
        .route(Method::Get, "/api/v1/metrics", metrics_handler)?
        .route(Method::Get, "/api/v1/metrics.json", metrics_json_handler)
}

/// The shared request scaffolding: authenticate the bearer token, pull the
/// peer SAE out of the matched path, parse the JSON body, run the endpoint
/// and wrap its result (200 or the typed error envelope).
fn respond(
    request: &Request,
    params: &PathParams,
    peer_param: &str,
    registry: &SaeRegistry,
    endpoint: impl FnOnce(&str, &str, &Json) -> Result<Json>,
) -> Response {
    let outcome = (|| {
        let token = request
            .header("authorization")
            .and_then(|v| v.strip_prefix("Bearer "));
        let caller = registry.authenticate(token)?;
        let peer = params
            .get(peer_param)
            .ok_or_else(|| QkdError::ChannelError {
                reason: format!("route pattern is missing `{{{peer_param}}}`"),
            })?;
        let body = if request.body.is_empty() {
            Json::Null
        } else {
            Json::parse(std::str::from_utf8(&request.body).map_err(|_| {
                QkdError::ChannelError {
                    reason: "request body is not UTF-8".into(),
                }
            })?)?
        };
        endpoint(&caller, peer, &body)
    })();
    match outcome {
        Ok(body) => Response::json(200, &body),
        Err(e) => {
            let (status, body) = error_to_json(&e);
            Response::json(status, &body)
        }
    }
}

/// `GET /api/v1/keys/{slave}/status`
fn status(
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
    caller: &str,
    peer: &str,
) -> Result<Json> {
    let link = registry.link_for(caller, peer)?;
    registry.admit(caller, 0)?;
    let status = store.status(link)?;
    Ok(Json::Obj(vec![
        ("source_KME_ID".into(), Json::str("kme-fleet")),
        ("target_KME_ID".into(), Json::str("kme-fleet")),
        ("master_SAE_ID".into(), Json::str(caller)),
        ("slave_SAE_ID".into(), Json::str(peer)),
        ("link".into(), Json::num(link as u64)),
        ("key_size".into(), Json::num(config.default_key_size as u64)),
        (
            "stored_key_count".into(),
            Json::num(status.available_bits / config.default_key_size as u64),
        ),
        (
            "max_key_per_request".into(),
            Json::num(config.max_keys_per_request as u64),
        ),
        ("max_key_size".into(), Json::num(config.max_key_size as u64)),
        ("min_key_size".into(), Json::num(1)),
        ("available_bits".into(), Json::num(status.available_bits)),
        ("delivered_bits".into(), Json::num(status.delivered_bits)),
        ("reserved_keys".into(), Json::num(status.reserved_keys)),
        (
            "reservations_expired".into(),
            Json::num(status.reservations_expired),
        ),
    ]))
}

/// `POST /api/v1/keys/{slave}/enc_keys`
fn enc_keys(
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
    caller: &str,
    slave: &str,
    body: &Json,
) -> Result<Json> {
    let number = match body.get("number") {
        None => 1,
        Some(v) => v.as_u64().ok_or_else(|| {
            QkdError::invalid_parameter("number", "must be a non-negative integer")
        })? as usize,
    };
    let size = match body.get("size") {
        None => config.default_key_size,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| QkdError::invalid_parameter("size", "must be a non-negative integer"))?
            as usize,
    };
    if number == 0 || number > config.max_keys_per_request {
        return Err(QkdError::invalid_parameter(
            "number",
            format!("must lie in 1..={}", config.max_keys_per_request),
        ));
    }
    if size == 0 || size > config.max_key_size {
        return Err(QkdError::invalid_parameter(
            "size",
            format!("must lie in 1..={} bits", config.max_key_size),
        ));
    }
    let link = registry.link_for(caller, slave)?;
    registry.admit(caller, (number * size) as u64)?;
    // The reservation is claimed by the slave's identity: even another SAE
    // pair entitled to the same link (or the master itself) cannot redeem
    // it via `dec_keys`. It parks at most `reservation_ttl` long.
    let keys = store.reserve_keys(link, number, size, Some(slave), config.reservation_ttl)?;
    Ok(Json::Obj(vec![(
        "keys".into(),
        Json::Arr(keys.iter().map(key_to_json).collect()),
    )]))
}

/// `POST /api/v1/keys/{master}/dec_keys`
fn dec_keys(
    store: &KeyStore,
    registry: &SaeRegistry,
    config: &ApiConfig,
    caller: &str,
    master: &str,
    body: &Json,
) -> Result<Json> {
    let containers = body
        .get("key_IDs")
        .and_then(Json::as_array)
        .ok_or_else(|| QkdError::invalid_parameter("key_IDs", "must be an array"))?;
    if containers.is_empty() || containers.len() > config.max_keys_per_request {
        return Err(QkdError::invalid_parameter(
            "key_IDs",
            format!("must name 1..={} keys", config.max_keys_per_request),
        ));
    }
    let link = registry.link_for(caller, master)?;
    let mut ids = Vec::with_capacity(containers.len());
    for container in containers {
        let id: KeyId = container
            .get("key_ID")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                QkdError::invalid_parameter("key_IDs", "each entry needs a string `key_ID`")
            })?
            .parse()?;
        // A key ID addressing another link is an entitlement violation, not
        // a lookup miss: the caller may not even probe foreign links.
        if id.link != link {
            return Err(QkdError::Unauthorized {
                reason: format!("key {id} does not belong to the ({caller}, {master}) pair"),
            });
        }
        ids.push(id);
    }
    registry.admit(caller, 0)?;
    // Pickups redeem under the caller's own identity: only the SAE the
    // reservation was made for can collect it (a mismatch reads exactly
    // like an unknown ID).
    let keys = store.get_keys_by_id(&ids, Some(caller))?;
    Ok(Json::Obj(vec![(
        "keys".into(),
        Json::Arr(keys.iter().map(key_to_json).collect()),
    )]))
}
