//! Wire representations shared by the server and the client: base64 key
//! material, key containers, and the error envelope that round-trips
//! [`QkdError`] values across the HTTP boundary.

use qkd_manager::{DeliveredKey, KeyId};
use qkd_types::{BitVec, QkdError, Result};

use crate::json::Json;

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Byte → six-bit value, 255 for bytes outside the alphabet (the decoder's
/// O(1) counterpart of [`B64_ALPHABET`]).
const B64_REVERSE: [u8; 256] = {
    let mut table = [255u8; 256];
    let mut i = 0;
    while i < 64 {
        table[B64_ALPHABET[i] as usize] = i as u8;
        i += 1;
    }
    table
};

/// Standard (padded) base64 of `bytes`.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        let chars = [
            B64_ALPHABET[(n >> 18) as usize & 63],
            B64_ALPHABET[(n >> 12) as usize & 63],
            B64_ALPHABET[(n >> 6) as usize & 63],
            B64_ALPHABET[n as usize & 63],
        ];
        let keep = chunk.len() + 1;
        for (i, &c) in chars.iter().enumerate() {
            out.push(if i < keep { c as char } else { '=' });
        }
    }
    out
}

/// Decodes standard (padded) base64.
///
/// # Errors
///
/// Returns [`QkdError::ChannelError`] for characters outside the alphabet,
/// misplaced padding, or a length that is not a multiple of four.
pub fn base64_decode(text: &str) -> Result<Vec<u8>> {
    let bad = |what: &str| QkdError::ChannelError {
        reason: format!("base64: {what}"),
    };
    let bytes = text.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(bad("length must be a multiple of four"));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err(bad("misplaced padding"));
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            let v = B64_REVERSE[c as usize];
            if v == 255 {
                return Err(bad("character outside the alphabet"));
            }
            n = (n << 6) | v as u32;
        }
        n <<= 6 * pad as u32;
        let b = n.to_be_bytes();
        out.extend_from_slice(&b[1..4 - pad]);
    }
    Ok(out)
}

/// One key as it crosses the wire: its ID and its bits.
#[derive(Debug, Clone, PartialEq)]
pub struct WireKey {
    /// The key's identity (the `key_ID` field).
    pub id: KeyId,
    /// The secret bits.
    pub bits: BitVec,
}

/// Encodes a delivered key as the ETSI key container
/// `{"key_ID": ..., "key": <base64>, "size": <bits>}`.
pub fn key_to_json(key: &DeliveredKey) -> Json {
    Json::Obj(vec![
        ("key_ID".into(), Json::str(key.id.to_string())),
        // The one sanctioned export of key material: an authenticated,
        // entitlement-checked delivery. `expose()` keeps it greppable.
        (
            "key".into(),
            Json::str(base64_encode(&key.bits.expose().to_bytes())),
        ),
        ("size".into(), Json::num(key.bits.len() as u64)),
    ])
}

/// Decodes one key container.
///
/// # Errors
///
/// Returns [`QkdError::ChannelError`] for a malformed container.
pub fn key_from_json(doc: &Json) -> Result<WireKey> {
    let field = |name: &str| {
        doc.get(name).ok_or_else(|| QkdError::ChannelError {
            reason: format!("key container is missing `{name}`"),
        })
    };
    let id: KeyId = field("key_ID")?
        .as_str()
        .ok_or_else(|| QkdError::ChannelError {
            reason: "`key_ID` must be a string".into(),
        })?
        .parse()?;
    let size = field("size")?
        .as_u64()
        .ok_or_else(|| QkdError::ChannelError {
            reason: "`size` must be a non-negative integer".into(),
        })? as usize;
    let bytes = base64_decode(
        field("key")?
            .as_str()
            .ok_or_else(|| QkdError::ChannelError {
                reason: "`key` must be a string".into(),
            })?,
    )?;
    if bytes.len() != size.div_ceil(8) {
        return Err(QkdError::ChannelError {
            reason: format!(
                "key material is {} bytes but `size` says {size} bits",
                bytes.len()
            ),
        });
    }
    Ok(WireKey {
        id,
        bits: BitVec::from_bytes(&bytes, size),
    })
}

/// Maps an error to its HTTP status and JSON envelope
/// (`{"code": ..., "message": ..., <variant fields>}`).
pub fn error_to_json(e: &QkdError) -> (u16, Json) {
    let mut members = Vec::new();
    let (status, code) = match e {
        QkdError::Unauthorized { reason } => {
            members.push(("reason".into(), Json::str(reason.clone())));
            (401, "unauthorized")
        }
        QkdError::RateLimited {
            sae,
            reason,
            retry_after_ms,
        } => {
            members.push(("sae".into(), Json::str(sae.clone())));
            members.push(("reason".into(), Json::str(reason.clone())));
            members.push(("retry_after_ms".into(), Json::num(*retry_after_ms)));
            (429, "rate_limited")
        }
        // A shortfall is the store being temporarily unable to serve the
        // demand, not a malformed request: 503, echoing the requested and
        // available bit counts so consumers can right-size the retry.
        QkdError::KeyStoreShortfall {
            link,
            requested,
            available,
        } => {
            members.push(("link".into(), Json::num(*link)));
            members.push(("requested".into(), Json::num(*requested)));
            members.push(("available".into(), Json::num(*available)));
            (503, "shortfall")
        }
        QkdError::UnknownKeyId { link, serial } => {
            members.push(("link".into(), Json::num(*link)));
            members.push(("serial".into(), Json::num(*serial)));
            (400, "unknown_key")
        }
        QkdError::InvalidParameter { .. } | QkdError::ChannelError { .. } => (400, "invalid"),
        _ => (500, "internal"),
    };
    members.insert(0, ("code".into(), Json::str(code)));
    members.insert(1, ("message".into(), Json::str(e.to_string())));
    (status, Json::Obj(members))
}

/// Reconstructs the error a non-2xx response carries, so API clients see
/// the same [`QkdError`] variants in-process callers do.
pub fn error_from_json(status: u16, body: &Json) -> QkdError {
    let message = body
        .get("message")
        .and_then(Json::as_str)
        .unwrap_or("no error message")
        .to_string();
    // The variant's inner reason travels verbatim in `reason`, so the
    // reconstructed error's display form does not nest the envelope's
    // display-form `message`.
    let reason = body
        .get("reason")
        .and_then(Json::as_str)
        .map_or_else(|| message.clone(), str::to_string);
    let num = |name: &str| body.get(name).and_then(Json::as_u64);
    match body.get("code").and_then(Json::as_str) {
        Some("unauthorized") => QkdError::Unauthorized { reason },
        Some("rate_limited") => QkdError::RateLimited {
            sae: body
                .get("sae")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            reason,
            retry_after_ms: num("retry_after_ms").unwrap_or_default(),
        },
        Some("shortfall") => QkdError::KeyStoreShortfall {
            link: num("link").unwrap_or_default(),
            requested: num("requested").unwrap_or_default(),
            available: num("available").unwrap_or_default(),
        },
        Some("unknown_key") => QkdError::UnknownKeyId {
            link: num("link").unwrap_or_default(),
            serial: num("serial").unwrap_or_default(),
        },
        Some("invalid") => QkdError::invalid_parameter("api", message),
        _ => QkdError::ChannelError {
            reason: format!("HTTP {status}: {message}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkd_types::rng::derive_rng;

    #[test]
    fn base64_matches_known_vectors() {
        for (raw, encoded) in [
            (&b""[..], ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(base64_encode(raw), encoded);
            assert_eq!(base64_decode(encoded).unwrap(), raw);
        }
        for bad in ["A", "====", "Zg=x", "Zg==Zg==x", "Z!=="] {
            assert!(base64_decode(bad).is_err(), "`{bad}` must not decode");
        }
    }

    #[test]
    fn key_containers_roundtrip_bit_exactly() {
        let mut rng = derive_rng(3, "wire-test");
        for len in [1usize, 7, 8, 9, 256, 1000] {
            let key = DeliveredKey {
                id: KeyId { link: 2, serial: 9 },
                bits: BitVec::random(&mut rng, len).into(),
                epsilon: 1e-10,
            };
            let doc = key_to_json(&key);
            let back = key_from_json(&doc).unwrap();
            assert_eq!(back.id, key.id);
            assert_eq!(back.bits, key.bits, "length {len}");
        }
        // Mismatched size and missing fields are rejected.
        let doc = Json::Obj(vec![
            ("key_ID".into(), Json::str("link0/key0")),
            ("key".into(), Json::str("AAAA")),
            ("size".into(), Json::num(5)),
        ]);
        assert!(key_from_json(&doc).is_err());
        assert!(key_from_json(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn error_envelopes_roundtrip_the_api_variants() {
        let cases = [
            (
                401,
                QkdError::Unauthorized {
                    reason: "no entitlement".into(),
                },
            ),
            (
                429,
                QkdError::RateLimited {
                    sae: "app-1".into(),
                    reason: "budget spent".into(),
                    retry_after_ms: 250,
                },
            ),
            (
                503,
                QkdError::KeyStoreShortfall {
                    link: 3,
                    requested: 512,
                    available: 100,
                },
            ),
            (400, QkdError::UnknownKeyId { link: 1, serial: 4 }),
        ];
        for (want_status, e) in cases {
            let (status, body) = error_to_json(&e);
            assert_eq!(status, want_status, "{e}");
            assert_eq!(error_from_json(status, &body), e, "must roundtrip exactly");
        }
        // The machine-readable members ride as numbers, not display text.
        let (_, body) = error_to_json(&QkdError::RateLimited {
            sae: "app-1".into(),
            reason: "budget spent".into(),
            retry_after_ms: 250,
        });
        assert_eq!(body.get("retry_after_ms").and_then(Json::as_u64), Some(250));
        let (status, body) = error_to_json(&QkdError::KeyStoreShortfall {
            link: 3,
            requested: 512,
            available: 100,
        });
        assert_eq!(status, 503);
        assert_eq!(body.get("requested").and_then(Json::as_u64), Some(512));
        assert_eq!(body.get("available").and_then(Json::as_u64), Some(100));
        // Unknown codes degrade to a channel error with the status.
        let back = error_from_json(502, &Json::Obj(vec![]));
        assert!(matches!(back, QkdError::ChannelError { .. }));
        assert!(back.to_string().contains("502"));
    }
}
