//! A blocking client for the key-delivery API, speaking the same wire
//! format over a real TCP connection — used by the examples, the e2e tests
//! and the `--api` bench harness, so everything that exercises the server
//! goes through an actual socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use qkd_manager::KeyId;
use qkd_types::{QkdError, Result};

use crate::json::Json;
use crate::wire::{error_from_json, key_from_json, WireKey};

/// Typed view of the fields a consumer acts on from a `status` response
/// (the raw document is also kept for forward compatibility).
#[derive(Debug, Clone, PartialEq)]
pub struct PeerStatus {
    /// Fleet link serving the pair.
    pub link: usize,
    /// Default key size offered by the server, in bits.
    pub key_size: usize,
    /// Whole keys of `key_size` bits available right now.
    pub stored_key_count: u64,
    /// Exact bits available right now.
    pub available_bits: u64,
    /// Reserved keys parked for pickup by ID.
    pub reserved_keys: u64,
    /// The raw response document.
    pub raw: Json,
}

/// A blocking API client bound to one SAE identity (its bearer token).
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
    token: String,
}

impl ApiClient {
    /// A client for the server at `addr`, authenticating with `token`.
    pub fn new(addr: SocketAddr, token: impl Into<String>) -> Self {
        Self {
            addr,
            token: token.into(),
        }
    }

    /// `GET /api/v1/keys/{peer}/status`.
    ///
    /// # Errors
    ///
    /// Returns the server's [`QkdError`] (reconstructed from the error
    /// envelope) or [`QkdError::ChannelError`] for transport failures.
    pub fn status(&self, peer: &str) -> Result<PeerStatus> {
        let doc = self.request("GET", &format!("/api/v1/keys/{peer}/status"), None)?;
        let num = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| QkdError::ChannelError {
                    reason: format!("status response is missing `{name}`"),
                })
        };
        Ok(PeerStatus {
            link: num("link")? as usize,
            key_size: num("key_size")? as usize,
            stored_key_count: num("stored_key_count")?,
            available_bits: num("available_bits")?,
            reserved_keys: num("reserved_keys")?,
            raw: doc,
        })
    }

    /// `POST /api/v1/keys/{slave}/enc_keys` — reserve `number` keys of
    /// `size` bits each (master side).
    ///
    /// # Errors
    ///
    /// See [`ApiClient::status`].
    pub fn enc_keys(&self, slave: &str, number: usize, size: usize) -> Result<Vec<WireKey>> {
        let body = Json::Obj(vec![
            ("number".into(), Json::num(number as u64)),
            ("size".into(), Json::num(size as u64)),
        ]);
        let doc = self.request(
            "POST",
            &format!("/api/v1/keys/{slave}/enc_keys"),
            Some(&body),
        )?;
        parse_keys(&doc)
    }

    /// `POST /api/v1/keys/{master}/dec_keys` — retrieve the peer copies of
    /// `ids` (slave side).
    ///
    /// # Errors
    ///
    /// See [`ApiClient::status`].
    pub fn dec_keys(&self, master: &str, ids: &[KeyId]) -> Result<Vec<WireKey>> {
        let body = Json::Obj(vec![(
            "key_IDs".into(),
            Json::Arr(
                ids.iter()
                    .map(|id| Json::Obj(vec![("key_ID".into(), Json::str(id.to_string()))]))
                    .collect(),
            ),
        )]);
        let doc = self.request(
            "POST",
            &format!("/api/v1/keys/{master}/dec_keys"),
            Some(&body),
        )?;
        parse_keys(&doc)
    }

    /// One request/response exchange over a fresh connection.
    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> Result<Json> {
        let transport = |what: String| QkdError::ChannelError { reason: what };
        let mut stream = TcpStream::connect(self.addr)
            .map_err(|e| transport(format!("connect {}: {e}", self.addr)))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_nodelay(true);

        let payload = body.map(Json::encode).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\nauthorization: Bearer {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            self.token,
            payload.len(),
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .map_err(|e| transport(format!("send: {e}")))?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| transport(format!("receive: {e}")))?;
        let text =
            std::str::from_utf8(&raw).map_err(|_| transport("response is not UTF-8".into()))?;
        let (head, body_text) = text
            .split_once("\r\n\r\n")
            .ok_or_else(|| transport("response has no header terminator".into()))?;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| transport(format!("malformed status line: {head}")))?;
        let doc = if body_text.is_empty() {
            Json::Null
        } else {
            Json::parse(body_text)?
        };
        if (200..300).contains(&status) {
            Ok(doc)
        } else {
            Err(error_from_json(status, &doc))
        }
    }
}

fn parse_keys(doc: &Json) -> Result<Vec<WireKey>> {
    doc.get("keys")
        .and_then(Json::as_array)
        .ok_or_else(|| QkdError::ChannelError {
            reason: "response is missing the `keys` array".into(),
        })?
        .iter()
        .map(key_from_json)
        .collect()
}
