//! A blocking client for the key-delivery API, speaking the same wire
//! format over a real TCP connection — used by the examples, the e2e tests
//! and the `--api` bench harness, so everything that exercises the server
//! goes through an actual socket.
//!
//! By default the client keeps its connection alive across calls
//! (HTTP/1.1 semantics, matching the server's connection tracker) and
//! transparently reconnects once when a kept-alive connection turns out to
//! be stale — harvested by the server's idle sweep, or dropped across a
//! restart. [`ApiClient::without_keep_alive`] opts back into the old
//! connection-per-request behavior (the bench harness uses it as the
//! comparison baseline).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use parking_lot::Mutex;

use qkd_manager::KeyId;
use qkd_types::{QkdError, Result};

use crate::json::Json;
use crate::wire::{error_from_json, key_from_json, WireKey};

/// Typed view of the fields a consumer acts on from a `status` response
/// (the raw document is also kept for forward compatibility).
#[derive(Debug, Clone, PartialEq)]
pub struct PeerStatus {
    /// Fleet link serving the pair.
    pub link: usize,
    /// Default key size offered by the server, in bits.
    pub key_size: usize,
    /// Whole keys of `key_size` bits available right now.
    pub stored_key_count: u64,
    /// Exact bits available right now.
    pub available_bits: u64,
    /// Reserved keys parked for pickup by ID.
    pub reserved_keys: u64,
    /// Reservations the server's TTL sweeper has reclaimed so far.
    pub reservations_expired: u64,
    /// The raw response document.
    pub raw: Json,
}

/// A blocking API client bound to one SAE identity (its bearer token).
pub struct ApiClient {
    addr: SocketAddr,
    token: String,
    keep_alive: bool,
    /// The kept-alive connection between calls; `None` until the first
    /// request (or always, without keep-alive).
    conn: Mutex<Option<TcpStream>>,
}

impl std::fmt::Debug for ApiClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiClient")
            .field("addr", &self.addr)
            .field("keep_alive", &self.keep_alive)
            .finish()
    }
}

impl Clone for ApiClient {
    /// Clones the identity, not the socket: each clone dials its own
    /// connection, so clones can be moved across threads independently.
    fn clone(&self) -> Self {
        Self {
            addr: self.addr,
            token: self.token.clone(),
            keep_alive: self.keep_alive,
            conn: Mutex::new(None),
        }
    }
}

impl ApiClient {
    /// A client for the server at `addr`, authenticating with `token`.
    pub fn new(addr: SocketAddr, token: impl Into<String>) -> Self {
        Self {
            addr,
            token: token.into(),
            keep_alive: true,
            conn: Mutex::new(None),
        }
    }

    /// Switches to one fresh connection per request (`Connection: close`).
    pub fn without_keep_alive(mut self) -> Self {
        self.keep_alive = false;
        self.conn = Mutex::new(None);
        self
    }

    /// `GET /api/v1/keys/{peer}/status`.
    ///
    /// # Errors
    ///
    /// Returns the server's [`QkdError`] (reconstructed from the error
    /// envelope) or [`QkdError::ChannelError`] for transport failures.
    pub fn status(&self, peer: &str) -> Result<PeerStatus> {
        let doc = self.request("GET", &format!("/api/v1/keys/{peer}/status"), None)?;
        let num = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| QkdError::ChannelError {
                    reason: format!("status response is missing `{name}`"),
                })
        };
        Ok(PeerStatus {
            link: num("link")? as usize,
            key_size: num("key_size")? as usize,
            stored_key_count: num("stored_key_count")?,
            available_bits: num("available_bits")?,
            reserved_keys: num("reserved_keys")?,
            reservations_expired: num("reservations_expired")?,
            raw: doc,
        })
    }

    /// `POST /api/v1/keys/{slave}/enc_keys` — reserve `number` keys of
    /// `size` bits each (master side).
    ///
    /// # Errors
    ///
    /// See [`ApiClient::status`].
    pub fn enc_keys(&self, slave: &str, number: usize, size: usize) -> Result<Vec<WireKey>> {
        let body = Json::Obj(vec![
            ("number".into(), Json::num(number as u64)),
            ("size".into(), Json::num(size as u64)),
        ]);
        let doc = self.request(
            "POST",
            &format!("/api/v1/keys/{slave}/enc_keys"),
            Some(&body),
        )?;
        parse_keys(&doc)
    }

    /// `POST /api/v1/keys/{master}/dec_keys` — retrieve the peer copies of
    /// `ids` (slave side).
    ///
    /// # Errors
    ///
    /// See [`ApiClient::status`].
    pub fn dec_keys(&self, master: &str, ids: &[KeyId]) -> Result<Vec<WireKey>> {
        let body = Json::Obj(vec![(
            "key_IDs".into(),
            Json::Arr(
                ids.iter()
                    .map(|id| Json::Obj(vec![("key_ID".into(), Json::str(id.to_string()))]))
                    .collect(),
            ),
        )]);
        let doc = self.request(
            "POST",
            &format!("/api/v1/keys/{master}/dec_keys"),
            Some(&body),
        )?;
        parse_keys(&doc)
    }

    /// `GET /api/v1/metrics` — the server's telemetry snapshot in
    /// Prometheus text exposition format (unauthenticated).
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::ChannelError`] for transport failures.
    pub fn metrics(&self) -> Result<String> {
        let (status, text) = self.request_raw("GET", "/api/v1/metrics", None)?;
        if status == 200 {
            Ok(text)
        } else {
            let doc = Json::parse(&text).unwrap_or(Json::Null);
            Err(error_from_json(status, &doc))
        }
    }

    /// `GET /api/v1/metrics.json` — the same snapshot as a JSON document
    /// (per-series quantiles plus the recent event log).
    ///
    /// # Errors
    ///
    /// See [`ApiClient::metrics`].
    pub fn metrics_json(&self) -> Result<Json> {
        self.request("GET", "/api/v1/metrics.json", None)
    }

    /// One JSON request/response exchange (see [`ApiClient::request_raw`]).
    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> Result<Json> {
        let (status, text) = self.request_raw(method, path, body)?;
        let doc = if text.is_empty() {
            Json::Null
        } else {
            Json::parse(&text)?
        };
        if (200..300).contains(&status) {
            Ok(doc)
        } else {
            Err(error_from_json(status, &doc))
        }
    }

    /// One request/response exchange, reusing the kept-alive connection
    /// when there is one.
    ///
    /// A reused connection that fails before yielding a response is
    /// assumed stale (idle-harvested or closed under us) and the exchange
    /// is retried exactly once on a fresh connection; failures on a fresh
    /// connection surface immediately.
    fn request_raw(&self, method: &str, path: &str, body: Option<&Json>) -> Result<(u16, String)> {
        let payload = body.map(Json::encode).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\nauthorization: Bearer {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            self.addr,
            self.token,
            payload.len(),
            if self.keep_alive { "keep-alive" } else { "close" },
        );

        // Take the parked connection out in its own statement: holding the
        // lock across `conclude` (which re-locks to park) would deadlock.
        let parked = self.conn.lock().take();
        if let Some(mut stream) = parked {
            if let Ok(exchange) = exchange(&mut stream, &head, &payload) {
                return Ok(self.conclude(stream, exchange));
            }
        }
        let mut stream = self.connect()?;
        let exchange = exchange(&mut stream, &head, &payload)?;
        Ok(self.conclude(stream, exchange))
    }

    fn connect(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(self.addr).map_err(|e| QkdError::ChannelError {
            reason: format!("connect {}: {e}", self.addr),
        })?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// Parks the connection for the next call (when kept alive and the
    /// server did not announce a close) and hands back the raw exchange.
    fn conclude(&self, stream: TcpStream, exchange: Exchange) -> (u16, String) {
        if self.keep_alive && !exchange.server_close {
            *self.conn.lock() = Some(stream);
        }
        (exchange.status, exchange.body)
    }
}

struct Exchange {
    status: u16,
    body: String,
    server_close: bool,
}

/// Writes one request and reads exactly one response (headers plus
/// `content-length` body — a kept-alive connection has no EOF to read to).
fn exchange(stream: &mut TcpStream, head: &str, payload: &str) -> Result<Exchange> {
    let transport = |what: String| QkdError::ChannelError { reason: what };
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| transport(format!("send: {e}")))?;

    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| transport(format!("receive: {e}")))?;
        if n == 0 {
            return Err(transport("connection closed before a response head".into()));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head_text = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| transport("response head is not UTF-8".into()))?;
    let status: u16 = head_text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| transport(format!("malformed status line: {head_text}")))?;
    let header = |name: &str| {
        head_text.lines().skip(1).find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    };
    let content_length: usize = header("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| transport("response has no content-length".into()))?;
    let server_close = header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));

    let body_start = head_end + 4;
    while raw.len() < body_start + content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| transport(format!("receive: {e}")))?;
        if n == 0 {
            return Err(transport("connection closed mid-body".into()));
        }
        raw.extend_from_slice(&chunk[..n]);
    }
    let body_text = std::str::from_utf8(&raw[body_start..body_start + content_length])
        .map_err(|_| transport("response is not UTF-8".into()))?;
    Ok(Exchange {
        status,
        body: body_text.to_string(),
        server_close,
    })
}

fn parse_keys(doc: &Json) -> Result<Vec<WireKey>> {
    doc.get("keys")
        .and_then(Json::as_array)
        .ok_or_else(|| QkdError::ChannelError {
            reason: "response is missing the `keys` array".into(),
        })?
        .iter()
        .map(key_from_json)
        .collect()
}
