//! Typed request routing: methods, path patterns with `{param}` captures,
//! a [`Handler`] trait, and the [`Router`] dispatch table.
//!
//! The transport ([`crate::http`]) hands every parsed request to one
//! [`Router`], which matches it against the registered
//! (method, pattern) pairs, extracts path parameters, and runs the typed
//! handler — or answers 404 (no pattern matched) / 405 (pattern matched,
//! method did not) with the same JSON error envelope the rest of the API
//! speaks. Patterns are compiled once at registration, so the per-request
//! cost is a segment walk.

use std::fmt;

use qkd_types::{QkdError, Result};

use crate::http::{Request, Response};
use crate::json::Json;

/// The HTTP methods the delivery API routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET` — read-only endpoints (`status`).
    Get,
    /// `POST` — state-changing endpoints (`enc_keys`, `dec_keys`).
    Post,
}

impl Method {
    /// Parses a request-line method token (case-insensitive).
    pub fn parse(token: &str) -> Option<Self> {
        if token.eq_ignore_ascii_case("GET") {
            Some(Method::Get)
        } else if token.eq_ignore_ascii_case("POST") {
            Some(Method::Post)
        } else {
            None
        }
    }

    /// The canonical request-line spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Path parameters captured by a matched [`Route`], in pattern order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathParams {
    params: Vec<(&'static str, String)>,
}

impl PathParams {
    /// The captured value of `{name}`, if the pattern has such a segment.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One compiled path pattern: literal segments interleaved with `{param}`
/// captures, e.g. `/api/v1/keys/{slave}/status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    pattern: &'static str,
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(&'static str),
    Param(&'static str),
}

impl Route {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for an empty pattern, an
    /// empty segment or capture name, or a `{`/`}` that does not wrap a
    /// whole segment — route patterns are developer input, so this fails
    /// registration loudly instead of mis-matching at request time.
    pub fn new(pattern: &'static str) -> Result<Self> {
        let bad = |reason: String| QkdError::InvalidParameter {
            name: "route",
            reason,
        };
        let trimmed = pattern.trim_matches('/');
        if trimmed.is_empty() {
            return Err(bad(format!("pattern `{pattern}` has no segments")));
        }
        let mut segments = Vec::new();
        for segment in trimmed.split('/') {
            if segment.is_empty() {
                return Err(bad(format!("pattern `{pattern}` has an empty segment")));
            }
            if let Some(name) = segment.strip_prefix('{') {
                let name = name
                    .strip_suffix('}')
                    .filter(|n| !n.is_empty() && !n.contains(['{', '}']))
                    .ok_or_else(|| {
                        bad(format!(
                            "pattern `{pattern}`: malformed capture `{segment}`"
                        ))
                    })?;
                segments.push(Segment::Param(name));
            } else if segment.contains(['{', '}']) {
                return Err(bad(format!(
                    "pattern `{pattern}`: `{{` and `}}` must wrap a whole segment"
                )));
            } else {
                segments.push(Segment::Literal(segment));
            }
        }
        Ok(Self { pattern, segments })
    }

    /// The source pattern this route was compiled from.
    pub fn pattern(&self) -> &'static str {
        self.pattern
    }

    /// Matches `path` against the pattern, extracting captures.
    pub fn match_path(&self, path: &str) -> Option<PathParams> {
        let mut params = PathParams::default();
        let mut segments = self.segments.iter();
        for part in path.trim_matches('/').split('/') {
            match segments.next()? {
                Segment::Literal(lit) => {
                    if *lit != part {
                        return None;
                    }
                }
                Segment::Param(name) => {
                    if part.is_empty() {
                        return None;
                    }
                    params.params.push((name, part.to_string()));
                }
            }
        }
        segments.next().is_none().then_some(params)
    }
}

/// A typed request handler: the request plus the path parameters its route
/// captured. Implemented for free by any matching closure.
pub trait Handler: Send + Sync {
    /// Produces the response for one dispatched request.
    fn handle(&self, request: &Request, params: &PathParams) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request, &PathParams) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request, params: &PathParams) -> Response {
        self(request, params)
    }
}

/// Registry handles for one route's telemetry, resolved once at
/// registration so dispatch never touches the registry's shard locks.
struct RouteObs {
    requests: qkd_obs::Counter,
    latency: qkd_obs::Histogram,
}

impl RouteObs {
    fn new(route: &'static str) -> Self {
        let labels = [("route", route)];
        let obs = qkd_obs::registry();
        RouteObs {
            requests: obs.counter("qkd_http_requests_total", &labels),
            latency: obs.histogram("qkd_http_request_seconds", &labels),
        }
    }
}

struct Entry {
    method: Method,
    route: Route,
    handler: Box<dyn Handler>,
    obs: RouteObs,
}

/// The dispatch table: an ordered list of (method, pattern) → handler
/// registrations. Shared read-only across every server shard.
pub struct Router {
    entries: Vec<Entry>,
    /// Telemetry for requests no pattern matched (the 404/405 envelopes).
    unmatched: RouteObs,
    denied_401: qkd_obs::Counter,
    throttled_429: qkd_obs::Counter,
    unavailable_503: qkd_obs::Counter,
}

impl Default for Router {
    fn default() -> Self {
        let status_counter = |status: &str| {
            qkd_obs::registry().counter("qkd_http_responses_total", &[("status", status)])
        };
        Self {
            entries: Vec::new(),
            unmatched: RouteObs::new("unmatched"),
            denied_401: status_counter("401"),
            throttled_429: status_counter("429"),
            unavailable_503: status_counter("503"),
        }
    }
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes())
            .finish()
    }
}

impl Router {
    /// An empty router (dispatches everything to 404).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` for `method` on `pattern` (builder-style).
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for a malformed pattern or a
    /// duplicate (method, pattern) registration.
    pub fn route(
        mut self,
        method: Method,
        pattern: &'static str,
        handler: impl Handler + 'static,
    ) -> Result<Self> {
        let route = Route::new(pattern)?;
        if self
            .entries
            .iter()
            .any(|e| e.method == method && e.route.pattern() == pattern)
        {
            return Err(QkdError::InvalidParameter {
                name: "route",
                reason: format!("{method} {pattern} is already registered"),
            });
        }
        self.entries.push(Entry {
            method,
            route,
            handler: Box::new(handler),
            obs: RouteObs::new(pattern),
        });
        Ok(self)
    }

    /// The registered (method, pattern) pairs, in registration order.
    pub fn routes(&self) -> Vec<(Method, &'static str)> {
        self.entries
            .iter()
            .map(|e| (e.method, e.route.pattern()))
            .collect()
    }

    /// Dispatches one request: first route whose pattern matches the path
    /// *and* whose method matches wins. A path that matches some pattern
    /// under a different (or unparseable) method is answered 405; a path
    /// no pattern matches is answered 404 — both with the API's JSON error
    /// envelope.
    pub fn dispatch(&self, request: &Request) -> Response {
        let start = std::time::Instant::now();
        let method = Method::parse(&request.method);
        let mut path_matched = false;
        for entry in &self.entries {
            if let Some(params) = entry.route.match_path(&request.path) {
                if method == Some(entry.method) {
                    let response = entry.handler.handle(request, &params);
                    self.observe(&entry.obs, response.status, start);
                    return response;
                }
                path_matched = true;
            }
        }
        let (status, code, message) = if path_matched {
            (
                405,
                "method_not_allowed",
                format!("{} is not valid for {}", request.method, request.path),
            )
        } else {
            (404, "not_found", format!("no such route: {}", request.path))
        };
        let response = Response::json(
            status,
            &Json::Obj(vec![
                ("code".into(), Json::str(code)),
                ("message".into(), Json::str(message)),
            ]),
        );
        self.observe(&self.unmatched, status, start);
        response
    }

    /// Records one dispatched request against its route's count/latency
    /// series plus the refusal-class status counters.
    fn observe(&self, obs: &RouteObs, status: u16, start: std::time::Instant) {
        obs.requests.inc();
        obs.latency.observe_duration(start.elapsed());
        match status {
            401 => self.denied_401.inc(),
            429 => self.throttled_429.inc(),
            503 => self.unavailable_503.inc(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn patterns_match_and_extract_params() {
        let route = Route::new("/api/v1/keys/{slave}/status").unwrap();
        let params = route
            .match_path("/api/v1/keys/billing-backend/status")
            .unwrap();
        assert_eq!(params.get("slave"), Some("billing-backend"));
        assert_eq!(params.get("missing"), None);
        // Trailing slash tolerance, but no partial or over-long matches.
        assert!(route.match_path("/api/v1/keys/x/status/").is_some());
        assert!(route.match_path("/api/v1/keys/x").is_none());
        assert!(route.match_path("/api/v1/keys/x/status/extra").is_none());
        assert!(route.match_path("/api/v2/keys/x/status").is_none());
        // An empty capture segment (double slash) does not match.
        assert!(route.match_path("/api/v1/keys//status").is_none());
    }

    #[test]
    fn malformed_patterns_are_rejected_at_registration() {
        for bad in ["", "//", "/a/{", "/a/{}/b", "/a/x{y}/b", "/a/{b}c"] {
            assert!(Route::new(bad).is_err(), "`{bad}` must not compile");
        }
        let ok = Router::new()
            .route(Method::Get, "/a/{b}", |_: &Request, _: &PathParams| {
                Response::json(200, &Json::Null)
            })
            .unwrap();
        // Same method + pattern again is a duplicate.
        assert!(ok
            .route(Method::Get, "/a/{b}", |_: &Request, _: &PathParams| {
                Response::json(200, &Json::Null)
            })
            .is_err());
    }

    #[test]
    fn dispatch_distinguishes_404_from_405() {
        let router = Router::new()
            .route(Method::Get, "/thing/{id}", |_: &Request, p: &PathParams| {
                Response::json(
                    200,
                    &Json::Obj(vec![(
                        "id".into(),
                        Json::str(p.get("id").unwrap_or_default()),
                    )]),
                )
            })
            .unwrap()
            .route(
                Method::Post,
                "/thing/{id}",
                |_: &Request, _: &PathParams| Response::json(200, &Json::str("posted")),
            )
            .unwrap();
        assert_eq!(router.routes().len(), 2);

        let ok = router.dispatch(&request("GET", "/thing/42"));
        assert_eq!(ok.status, 200);
        assert!(String::from_utf8(ok.body).unwrap().contains("42"));
        // Same path, unregistered method → 405; unparseable method → 405.
        for method in ["DELETE", "NONSENSE"] {
            let resp = router.dispatch(&request(method, "/thing/42"));
            assert_eq!(resp.status, 405, "{method}");
            assert!(String::from_utf8(resp.body)
                .unwrap()
                .contains("method_not_allowed"));
        }
        // Unknown path → 404, whatever the method.
        let resp = router.dispatch(&request("GET", "/nowhere"));
        assert_eq!(resp.status, 404);
        assert!(String::from_utf8(resp.body).unwrap().contains("not_found"));
    }
}
