//! Belief-propagation syndrome decoders.
//!
//! Reconciliation uses *syndrome decoding*: given Bob's key `y`, Alice's
//! syndrome `s_A = H x`, and Bob's own syndrome `s_B = H y`, Bob decodes the
//! error pattern `e` with `H e = s_A ⊕ s_B` under an i.i.d. bit-flip prior at
//! the estimated QBER, then sets `x = y ⊕ e`.
//!
//! Two message-passing algorithms (sum-product and normalised min-sum) and
//! two schedules (flooding and layered) are provided; the combinations are the
//! ablation axes of the evaluation (Table 2, `ablate-decoder`).
//!
//! # Hot-path layout
//!
//! The decoder is the fleet's hot loop, so the message-passing state lives in
//! flat check-major arrays (structure-of-arrays, contiguous per-check edge
//! slices) and every buffer the iteration loops touch comes from a
//! caller-owned [`DecoderScratch`] that is reused across iterations, blocks
//! and rate-ladder attempts — after the first decode at a given size, a
//! decode performs **zero heap allocations** inside the iteration loops.
//! Convergence is checked word-packed: the syndrome of the packed
//! hard-decision words is rebuilt by walking only the *set* bits through the
//! variable-major column map, instead of a bit-by-bit sweep of every edge.
//!
//! [`SyndromeDecoder::decode_reference`] retains the seed implementation's
//! *cost profile* — per-check `Vec` construction and cloning, bit-by-bit
//! syndrome checks through [`BitVec::get`], message buffers rebuilt on every
//! call — on the current flat adjacency. It is the equivalence oracle for
//! the optimized path (outcomes are bit-identical by construction) and the
//! baseline the `--decoder` harness benchmark measures speedups against.

use serde::{Deserialize, Serialize};

use qkd_types::secret::{zeroize_f64s, zeroize_words};
use qkd_types::{BitVec, QkdError, Result};

use crate::matrix::ParityCheckMatrix;

/// Message-passing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecoderAlgorithm {
    /// Exact sum-product (tanh rule). Best threshold, slowest.
    SumProduct,
    /// Normalised min-sum with the given scale factor numerator over 100
    /// (e.g. 75 means messages are scaled by 0.75). Hardware friendly.
    MinSum {
        /// Normalisation factor in hundredths (75 ⇒ 0.75).
        scale_pct: u8,
    },
}

impl DecoderAlgorithm {
    /// The conventional normalised min-sum variant (scale 0.75).
    pub const NORMALIZED_MIN_SUM: DecoderAlgorithm = DecoderAlgorithm::MinSum { scale_pct: 75 };
}

/// Message-update schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// All checks updated from the previous iteration's variable messages.
    Flooding,
    /// Checks processed sequentially, posteriors updated immediately
    /// (converges in roughly half the iterations).
    Layered,
}

/// Decoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// Algorithm to run.
    pub algorithm: DecoderAlgorithm,
    /// Schedule to use.
    pub schedule: Schedule,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Magnitude at which LLRs are clamped for numerical stability.
    pub llr_clamp: f64,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            algorithm: DecoderAlgorithm::NORMALIZED_MIN_SUM,
            schedule: Schedule::Layered,
            max_iterations: 60,
            llr_clamp: 30.0,
        }
    }
}

impl DecoderConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        if self.max_iterations == 0 {
            return Err(QkdError::invalid_parameter(
                "max_iterations",
                "must be at least 1",
            ));
        }
        if self.llr_clamp <= 0.0 {
            return Err(QkdError::invalid_parameter("llr_clamp", "must be positive"));
        }
        if let DecoderAlgorithm::MinSum { scale_pct } = self.algorithm {
            if scale_pct == 0 || scale_pct > 100 {
                return Err(QkdError::invalid_parameter(
                    "scale_pct",
                    "must lie in 1..=100",
                ));
            }
        }
        Ok(())
    }
}

/// Result of a decode attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeOutcome {
    /// The decoded error pattern (only meaningful when `converged`).
    pub error_pattern: BitVec,
    /// Whether the syndrome constraint was satisfied.
    pub converged: bool,
    /// Iterations actually executed.
    pub iterations: usize,
}

/// Scratch buffers for the sum-product check update (tanh values and their
/// prefix/suffix products), sized to the largest check degree seen so far.
#[derive(Debug, Clone, Default)]
pub struct SumProductScratch {
    tanh: Vec<f64>,
    prefix: Vec<f64>,
    suffix: Vec<f64>,
}

impl SumProductScratch {
    fn ensure(&mut self, degree: usize) {
        if self.tanh.len() < degree {
            self.tanh.resize(degree, 0.0);
        }
        if self.prefix.len() < degree + 1 {
            self.prefix.resize(degree + 1, 0.0);
            self.suffix.resize(degree + 1, 0.0);
        }
    }

    fn zeroize(&mut self) {
        zeroize_f64s(&mut self.tanh);
        zeroize_f64s(&mut self.prefix);
        zeroize_f64s(&mut self.suffix);
    }
}

/// The check-node update kernel, with the algorithm parameters resolved once
/// per decoder instead of per check (the normalisation factor used to be
/// re-derived from `scale_pct` on every check of every iteration).
///
/// `values` holds the incoming variable-to-check messages of one check and is
/// overwritten in place with the outgoing check-to-variable messages;
/// `sign_target` is `-1.0` when the target syndrome bit is set.
#[derive(Debug, Clone, Copy)]
pub enum CheckKernel {
    /// Exact tanh-rule update.
    SumProduct,
    /// Normalised min-sum update with a pre-resolved scale factor.
    MinSum {
        /// Normalisation factor (e.g. 0.75).
        scale: f64,
    },
}

impl CheckKernel {
    /// Resolves the kernel for an algorithm.
    pub fn new(algorithm: DecoderAlgorithm) -> Self {
        match algorithm {
            DecoderAlgorithm::SumProduct => CheckKernel::SumProduct,
            DecoderAlgorithm::MinSum { scale_pct } => CheckKernel::MinSum {
                scale: f64::from(scale_pct) / 100.0,
            },
        }
    }

    /// Applies the check update in place, drawing any temporary storage from
    /// `sp` (used by the sum-product rule only).
    pub fn apply(&self, values: &mut [f64], sign_target: f64, sp: &mut SumProductScratch) {
        match *self {
            CheckKernel::SumProduct => {
                let deg = values.len();
                sp.ensure(deg);
                // Product of tanh(v/2) excluding self, via prefix/suffix
                // products.
                for (t, &v) in sp.tanh.iter_mut().zip(values.iter()) {
                    *t = (v / 2.0).tanh();
                }
                sp.prefix[0] = 1.0;
                for i in 0..deg {
                    sp.prefix[i + 1] = sp.prefix[i] * sp.tanh[i];
                }
                sp.suffix[deg] = 1.0;
                for i in (0..deg).rev() {
                    sp.suffix[i] = sp.suffix[i + 1] * sp.tanh[i];
                }
                for (i, v) in values.iter_mut().enumerate() {
                    let prod = (sp.prefix[i] * sp.suffix[i + 1] * sign_target)
                        .clamp(-0.999_999, 0.999_999);
                    *v = 2.0 * prod.atanh();
                }
            }
            CheckKernel::MinSum { scale } => {
                // Two smallest magnitudes and the overall sign product.
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min1_idx = 0usize;
                let mut sign_prod = sign_target;
                for (i, &v) in values.iter().enumerate() {
                    let a = v.abs();
                    if a < min1 {
                        min2 = min1;
                        min1 = a;
                        min1_idx = i;
                    } else if a < min2 {
                        min2 = a;
                    }
                    if v < 0.0 {
                        sign_prod = -sign_prod;
                    }
                }
                // Sign product and scale fold into one factor outside the
                // per-edge loop; both signs are exactly ±1, so the result is
                // bit-identical to multiplying them edge by edge.
                let signed_scale = sign_prod * scale;
                for (i, v) in values.iter_mut().enumerate() {
                    let self_sign = if *v < 0.0 { -1.0 } else { 1.0 };
                    let mag = if i == min1_idx { min2 } else { min1 };
                    *v = self_sign * signed_scale * if mag.is_finite() { mag } else { 0.0 };
                }
            }
        }
    }

    /// Reference variant that allocates its temporary storage per call,
    /// preserving the cost profile of the original per-check implementation
    /// (used by [`SyndromeDecoder::decode_reference`]).
    fn apply_alloc(&self, values: &mut [f64], sign_target: f64) {
        let mut sp = SumProductScratch::default();
        self.apply(values, sign_target, &mut sp);
    }
}

/// Branchless select: `if cond { a } else { b }` computed with a bit mask,
/// keeping the decoder's value-dependent choices out of the branch predictor
/// (the min-scan's data-dependent branches are the single largest cost of
/// the scalar hot loop).
#[inline(always)]
fn sel(cond: bool, a: f64, b: f64) -> f64 {
    let mask = (cond as u64).wrapping_neg();
    f64::from_bits((a.to_bits() & mask) | (b.to_bits() & !mask))
}

/// Branchless select for indices.
#[inline(always)]
fn sel_idx(cond: bool, a: usize, b: usize) -> usize {
    let mask = (cond as usize).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Branchless sign flip: `-x` when `cond`, else `x` (exact — toggles the
/// sign bit, which is how multiplying by ±1.0 behaves).
#[inline(always)]
fn flip_if(x: f64, cond: bool) -> f64 {
    f64::from_bits(x.to_bits() ^ ((cond as u64) << 63))
}

/// Branchless `clamp(-limit, limit)`. Equal to `f64::clamp` for every
/// non-NaN input (the decoder's LLRs are always finite).
#[inline(always)]
fn clamp_sym(x: f64, limit: f64) -> f64 {
    x.max(-limit).min(limit)
}

/// Caller-owned arena for every buffer the decode iteration loops touch:
/// per-edge message arrays, per-variable priors and posteriors, a per-check
/// input buffer sized to the maximum check degree, and word-packed hard
/// decisions.
///
/// A scratch starts empty and grows to the largest decoder it has served; it
/// can be reused freely across decoders, blocks, rate-ladder attempts and
/// mixed block sizes. Reuse is what makes the decode loops allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DecoderScratch {
    /// Per-edge variable-to-check messages (flooding schedule).
    v2c: Vec<f64>,
    /// Per-edge check-to-variable messages.
    c2v: Vec<f64>,
    /// Per-variable channel priors.
    channel: Vec<f64>,
    /// Per-variable posterior LLRs (layered schedule).
    posterior: Vec<f64>,
    /// Per-check extrinsic inputs (sized to the maximum check degree).
    inputs: Vec<f64>,
    /// Word-packed hard decisions.
    hard: Vec<u64>,
    /// Word-packed syndrome of the current hard decisions.
    syn: Vec<u64>,
    /// Sum-product temporaries.
    sp: SumProductScratch,
}

impl DecoderScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows every buffer to fit `decoder` (never shrinks, so one scratch
    /// serves a whole rate ladder or a mix of block sizes).
    fn ensure(&mut self, decoder: &SyndromeDecoder) {
        let edges = decoder.edge_var.len();
        let n = decoder.n;
        if self.v2c.len() < edges {
            self.v2c.resize(edges, 0.0);
            self.c2v.resize(edges, 0.0);
        }
        if self.channel.len() < n {
            self.channel.resize(n, 0.0);
            self.posterior.resize(n, 0.0);
        }
        if self.inputs.len() < decoder.max_check_degree {
            self.inputs.resize(decoder.max_check_degree, 0.0);
        }
        let words = n.div_ceil(64);
        if self.hard.len() < words {
            self.hard.resize(words, 0);
        }
        let syn_words = decoder.m.div_ceil(64);
        if self.syn.len() < syn_words {
            self.syn.resize(syn_words, 0);
        }
        self.sp.ensure(decoder.max_check_degree);
    }

    /// Volatile-overwrites every buffer. Decode state is derived from raw key
    /// material (priors, posteriors, hard decisions), so a scratch that is
    /// about to be dropped or parked should not leave it readable in freed
    /// heap memory.
    pub fn zeroize(&mut self) {
        zeroize_f64s(&mut self.v2c);
        zeroize_f64s(&mut self.c2v);
        zeroize_f64s(&mut self.channel);
        zeroize_f64s(&mut self.posterior);
        zeroize_f64s(&mut self.inputs);
        zeroize_words(&mut self.hard);
        zeroize_words(&mut self.syn);
        self.sp.zeroize();
    }
}

/// A belief-propagation syndrome decoder bound to one parity-check matrix.
///
/// The Tanner graph is stored flat (check-major edge list plus a CSR
/// variable-to-edge map) so both orientations of the message-passing sweep
/// run over contiguous memory. The decoder itself is immutable and shareable;
/// all mutable decode state lives in a [`DecoderScratch`].
#[derive(Debug, Clone)]
pub struct SyndromeDecoder {
    config: DecoderConfig,
    kernel: CheckKernel,
    /// Flattened (check-major) variable indices, one entry per edge.
    edge_var: Vec<u32>,
    /// Start offset of each check's edges in `edge_var` (length `m + 1`).
    check_offsets: Vec<u32>,
    /// Flattened (variable-major) edge ids.
    var_edge: Vec<u32>,
    /// Flattened (variable-major) check ids, parallel to `var_edge`.
    var_check: Vec<u32>,
    /// Start offset of each variable's edges in `var_edge` (length `n + 1`).
    var_offsets: Vec<u32>,
    /// Lane-per-check schedule for the AVX2 min-sum sweeps: quads of
    /// consecutive equal-degree checks (additionally pairwise
    /// variable-disjoint for the layered schedule), interleaved with scalar
    /// singles. Empty when the host lacks AVX2 (scalar sweep runs).
    #[cfg(target_arch = "x86_64")]
    quad_sched: Vec<u32>,
    max_check_degree: usize,
    n: usize,
    m: usize,
    /// Iterations-to-converge histogram (`qkd_ldpc_decode_iterations`).
    obs_iterations: qkd_obs::Histogram,
    /// Decode calls by dispatched kernel
    /// (`qkd_ldpc_kernel_dispatch_total{kernel="avx2"|"scalar"}`).
    obs_kernel: qkd_obs::Counter,
}

impl SyndromeDecoder {
    /// Builds a decoder for the given matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] if the configuration is invalid.
    pub fn new(matrix: &ParityCheckMatrix, config: DecoderConfig) -> Result<Self> {
        config.validate()?;
        let m = matrix.num_checks();
        let n = matrix.num_vars();
        let num_edges = matrix.num_edges();

        // Check-major edge list.
        let mut edge_var = Vec::with_capacity(num_edges);
        let mut check_offsets = Vec::with_capacity(m + 1);
        let mut var_degree = vec![0u32; n];
        let mut max_check_degree = 0usize;
        check_offsets.push(0u32);
        for c in 0..m {
            let neighbors = matrix.check_neighbors(c);
            max_check_degree = max_check_degree.max(neighbors.len());
            for &v in neighbors {
                var_degree[v] += 1;
                edge_var.push(v as u32);
            }
            check_offsets.push(edge_var.len() as u32);
        }

        // CSR variable-to-edge map, filled in edge order so per-variable
        // message sums run in the same order as the check-major sweep.
        let mut var_offsets = vec![0u32; n + 1];
        for v in 0..n {
            var_offsets[v + 1] = var_offsets[v] + var_degree[v];
        }
        let mut cursor: Vec<u32> = var_offsets[..n].to_vec();
        let mut var_edge = vec![0u32; num_edges];
        let mut var_check = vec![0u32; num_edges];
        for c in 0..m {
            let (s, e) = (check_offsets[c] as usize, check_offsets[c + 1] as usize);
            for (edge, &v) in edge_var[s..e].iter().enumerate() {
                let v = v as usize;
                var_edge[cursor[v] as usize] = (s + edge) as u32;
                var_check[cursor[v] as usize] = c as u32;
                cursor[v] += 1;
            }
        }

        // Only the min-sum sweeps consume the quad schedule; other
        // configurations skip the scan and the memory. Layered quads must be
        // pairwise variable-disjoint (lanes would otherwise observe each
        // other's posterior writes); flooding check updates are independent
        // within a sweep, so consecutive equal-degree checks suffice.
        #[cfg(target_arch = "x86_64")]
        let quad_sched = if matches!(config.algorithm, DecoderAlgorithm::MinSum { .. })
            && std::arch::is_x86_feature_detected!("avx2")
        {
            // `var_degree` has served its purpose; reuse it as the stamp
            // buffer for the disjointness scan.
            var_degree.fill(0);
            crate::simd::build_schedule(
                m,
                &check_offsets,
                &edge_var,
                &mut var_degree,
                config.schedule == Schedule::Layered,
            )
        } else {
            Vec::new()
        };

        // The kernel dispatch is fixed at construction, so the counter label
        // is too: one series per kernel tells operators whether the fleet is
        // actually running the vectorised sweep.
        #[cfg(target_arch = "x86_64")]
        let kernel_label = if quad_sched.is_empty() {
            "scalar"
        } else {
            "avx2"
        };
        #[cfg(not(target_arch = "x86_64"))]
        let kernel_label = "scalar";
        let obs = qkd_obs::registry();
        Ok(Self {
            kernel: CheckKernel::new(config.algorithm),
            config,
            edge_var,
            check_offsets,
            var_edge,
            var_check,
            var_offsets,
            #[cfg(target_arch = "x86_64")]
            quad_sched,
            max_check_degree,
            n,
            m,
            obs_iterations: obs.histogram_with(
                "qkd_ldpc_decode_iterations",
                &[],
                &qkd_obs::COUNT_BUCKETS,
            ),
            obs_kernel: obs.counter(
                "qkd_ldpc_kernel_dispatch_total",
                &[("kernel", kernel_label)],
            ),
        })
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Codeword length this decoder expects.
    pub fn block_len(&self) -> usize {
        self.n
    }

    /// Syndrome length this decoder expects.
    pub fn syndrome_len(&self) -> usize {
        self.m
    }

    fn validate_inputs(&self, target_syndrome: &BitVec, qber: f64) -> Result<()> {
        if target_syndrome.len() != self.m {
            return Err(QkdError::DimensionMismatch {
                context: "syndrome decoding",
                expected: self.m,
                actual: target_syndrome.len(),
            });
        }
        if !(0.0 < qber && qber < 0.5) {
            return Err(QkdError::invalid_parameter(
                "qber",
                "must lie strictly in (0, 0.5)",
            ));
        }
        Ok(())
    }

    fn prior_llr(&self, qber: f64) -> f64 {
        ((1.0 - qber) / qber).ln().min(self.config.llr_clamp)
    }

    /// Decodes an error pattern `e` with `H e = target_syndrome` under an
    /// i.i.d. flip prior `qber`, with optional per-variable LLR overrides.
    ///
    /// `llr_overrides` assigns a fixed prior LLR to selected variables:
    /// shortened (known-zero) positions use a large positive LLR, punctured
    /// (unknown) positions use zero.
    ///
    /// This is the convenience form that allocates a fresh [`DecoderScratch`]
    /// per call; hot paths should hold a scratch and use
    /// [`SyndromeDecoder::decode_with_scratch`].
    ///
    /// # Errors
    ///
    /// * [`QkdError::DimensionMismatch`] when the syndrome length is wrong.
    /// * [`QkdError::InvalidParameter`] when `qber` is outside `(0, 0.5)`.
    pub fn decode(
        &self,
        target_syndrome: &BitVec,
        qber: f64,
        llr_overrides: &[(usize, f64)],
    ) -> Result<DecodeOutcome> {
        let mut scratch = DecoderScratch::new();
        self.decode_with_scratch(target_syndrome, qber, llr_overrides, &mut scratch)
    }

    /// Decodes like [`SyndromeDecoder::decode`], drawing every working buffer
    /// from `scratch`. With a warm scratch the iteration loops perform no
    /// heap allocation at all; the scratch may be shared across decoders,
    /// blocks, rate-ladder attempts and block sizes.
    ///
    /// # Errors
    ///
    /// Same as [`SyndromeDecoder::decode`].
    pub fn decode_with_scratch(
        &self,
        target_syndrome: &BitVec,
        qber: f64,
        llr_overrides: &[(usize, f64)],
        scratch: &mut DecoderScratch,
    ) -> Result<DecodeOutcome> {
        self.validate_inputs(target_syndrome, qber)?;
        scratch.ensure(self);
        let clamp = self.config.llr_clamp;
        let prior = self.prior_llr(qber);
        // Flooding consults the priors on every variable update, so they get
        // their own buffer; layered only seeds the posteriors with them.
        let priors = match self.config.schedule {
            Schedule::Flooding => &mut scratch.channel[..self.n],
            Schedule::Layered => &mut scratch.posterior[..self.n],
        };
        priors.fill(prior);
        for &(v, llr) in llr_overrides {
            if v < self.n {
                priors[v] = llr.clamp(-clamp, clamp);
            }
        }
        let outcome = match self.config.schedule {
            Schedule::Flooding => self.decode_flooding_scratch(target_syndrome, scratch),
            Schedule::Layered => self.decode_layered_scratch(target_syndrome, scratch),
        };
        self.obs_kernel.inc();
        self.obs_iterations.observe(outcome.iterations as f64);
        Ok(outcome)
    }

    /// The retained reference decoder: it preserves the seed
    /// implementation's allocation profile — per-call message buffers,
    /// per-check `Vec` construction and cloning, bit-by-bit syndrome checks
    /// — while sharing the flat adjacency and check kernel with the
    /// optimized path. Bit-identical in outcome to
    /// [`SyndromeDecoder::decode_with_scratch`]; kept as the equivalence
    /// oracle for tests and as the baseline the `--decoder` benchmark
    /// measures the optimized path against.
    ///
    /// # Errors
    ///
    /// Same as [`SyndromeDecoder::decode`].
    pub fn decode_reference(
        &self,
        target_syndrome: &BitVec,
        qber: f64,
        llr_overrides: &[(usize, f64)],
    ) -> Result<DecodeOutcome> {
        self.validate_inputs(target_syndrome, qber)?;
        let clamp = self.config.llr_clamp;
        let prior = self.prior_llr(qber);
        let mut channel = vec![prior; self.n];
        for &(v, llr) in llr_overrides {
            if v < self.n {
                channel[v] = llr.clamp(-clamp, clamp);
            }
        }
        Ok(match self.config.schedule {
            Schedule::Flooding => self.decode_flooding_reference(target_syndrome, &channel),
            Schedule::Layered => self.decode_layered_reference(target_syndrome, &channel),
        })
    }

    #[inline]
    fn check_range(&self, c: usize) -> (usize, usize) {
        (
            self.check_offsets[c] as usize,
            self.check_offsets[c + 1] as usize,
        )
    }

    #[inline]
    fn var_range(&self, v: usize) -> (usize, usize) {
        (
            self.var_offsets[v] as usize,
            self.var_offsets[v + 1] as usize,
        )
    }

    /// Sign of the target syndrome bit `c`, read from the packed words.
    #[inline]
    fn target_sign(target_words: &[u64], c: usize) -> f64 {
        if (target_words[c >> 6] >> (c & 63)) & 1 == 1 {
            -1.0
        } else {
            1.0
        }
    }

    /// Copies the packed hard decisions into an owned error pattern.
    fn pattern_from_words(&self, hard: &[u64]) -> BitVec {
        let mut pattern = BitVec::zeros(self.n);
        pattern.as_words_mut().copy_from_slice(hard);
        pattern
    }

    /// Fused min-sum check sweep for the flooding schedule: one pass over a
    /// check's incoming messages accumulates the two smallest magnitudes and
    /// the sign product, a second writes the outgoing messages — no staging
    /// copy, branchless value-dependent selects, bit-identical arithmetic to
    /// [`CheckKernel::apply`].
    fn min_sum_flooding_sweep(
        &self,
        scale: f64,
        v2c: &[f64],
        c2v: &mut [f64],
        target_words: &[u64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if !self.quad_sched.is_empty() {
            for &entry in &self.quad_sched {
                if entry & crate::simd::QUAD != 0 {
                    let c = (entry & !crate::simd::QUAD) as usize;
                    let (s, e) = self.check_range(c);
                    // SAFETY: the schedule was built for this exact graph
                    // (quads are in-bounds and equal-degree) and only when
                    // AVX2 was detected at construction.
                    unsafe {
                        crate::simd::min_sum_flooding_quad(
                            c,
                            e - s,
                            &self.check_offsets,
                            target_words,
                            scale,
                            v2c,
                            c2v,
                        );
                    }
                } else {
                    self.min_sum_flooding_check(entry as usize, scale, v2c, c2v, target_words);
                }
            }
            return;
        }
        for c in 0..self.m {
            self.min_sum_flooding_check(c, scale, v2c, c2v, target_words);
        }
    }

    /// Scalar min-sum flooding update of one check (the fused two-pass form
    /// shared by the non-quad entries of the AVX2 schedule and by hosts
    /// without AVX2).
    #[inline]
    fn min_sum_flooding_check(
        &self,
        c: usize,
        scale: f64,
        v2c: &[f64],
        c2v: &mut [f64],
        target_words: &[u64],
    ) {
        let (s, e) = self.check_range(c);
        let inputs = &v2c[s..e];
        let mut min1 = f64::INFINITY;
        let mut min2 = f64::INFINITY;
        let mut min1_idx = 0usize;
        let mut neg = false;
        for (k, &v) in inputs.iter().enumerate() {
            let a = v.abs();
            let is_new_min = a < min1;
            let runner_up = sel(is_new_min, min1, a);
            min2 = sel(runner_up < min2, runner_up, min2);
            min1 = sel(is_new_min, a, min1);
            min1_idx = sel_idx(is_new_min, k, min1_idx);
            neg ^= v < 0.0;
        }
        let sign_target = Self::target_sign(target_words, c);
        let signed_scale = flip_if(sign_target * scale, neg);
        // ±∞ survives only on degenerate degree-0/1 checks; the kernel
        // substitutes zero there, and so must the pre-scaled magnitudes.
        let mag1 = signed_scale * if min1.is_finite() { min1 } else { 0.0 };
        let mag2 = signed_scale * if min2.is_finite() { min2 } else { 0.0 };
        for (k, (&v, out)) in inputs.iter().zip(c2v[s..e].iter_mut()).enumerate() {
            let mag = sel(k == min1_idx, mag2, mag1);
            *out = flip_if(mag, v < 0.0);
        }
    }

    fn decode_flooding_scratch(
        &self,
        target: &BitVec,
        scratch: &mut DecoderScratch,
    ) -> DecodeOutcome {
        let clamp = self.config.llr_clamp;
        let num_edges = self.edge_var.len();
        let words = self.n.div_ceil(64);
        let DecoderScratch {
            v2c,
            c2v,
            channel,
            hard,
            syn,
            sp,
            ..
        } = scratch;
        let v2c = &mut v2c[..num_edges];
        let c2v = &mut c2v[..num_edges];
        let channel = &channel[..self.n];
        let hard = &mut hard[..words];
        let target_words = target.as_words();

        // Variable-to-check messages start at the channel prior.
        for (msg, &v) in v2c.iter_mut().zip(&self.edge_var) {
            *msg = channel[v as usize];
        }

        for iter in 1..=self.config.max_iterations {
            // Check node update, in place on the contiguous edge slice. The
            // min-sum default runs the fused sweep; sum-product stages
            // through the kernel.
            if let CheckKernel::MinSum { scale } = self.kernel {
                self.min_sum_flooding_sweep(scale, v2c, c2v, target_words);
            } else {
                for c in 0..self.m {
                    let (s, e) = self.check_range(c);
                    let out = &mut c2v[s..e];
                    out.copy_from_slice(&v2c[s..e]);
                    self.kernel
                        .apply(out, Self::target_sign(target_words, c), sp);
                }
            }
            // Variable node update + packed hard decision.
            hard.fill(0);
            for (v, &prior) in channel.iter().enumerate() {
                let (s, e) = self.var_range(v);
                let mut total = prior;
                for &edge in &self.var_edge[s..e] {
                    total += c2v[edge as usize];
                }
                hard[v >> 6] |= u64::from(total < 0.0) << (v & 63);
                for &edge in &self.var_edge[s..e] {
                    let edge = edge as usize;
                    v2c[edge] = clamp_sym(total - c2v[edge], clamp);
                }
            }
            if self.syndrome_ok_packed(hard, target_words, syn) {
                return DecodeOutcome {
                    error_pattern: self.pattern_from_words(hard),
                    converged: true,
                    iterations: iter,
                };
            }
        }
        DecodeOutcome {
            error_pattern: self.pattern_from_words(hard),
            converged: false,
            iterations: self.config.max_iterations,
        }
    }

    /// Fused min-sum check sweep for the layered schedule: the extrinsic
    /// inputs, the two-minimum/sign scan, the outgoing messages and the
    /// posterior updates run in two passes per check instead of staging
    /// through the generic kernel. Value-dependent choices are branchless
    /// mask selects (the min-scan's data-dependent branches would otherwise
    /// dominate the sweep); arithmetic is bit-identical to the reference.
    fn min_sum_layered_sweep(
        &self,
        scale: f64,
        clamp: f64,
        c2v: &mut [f64],
        posterior: &mut [f64],
        inputs: &mut [f64],
        target_words: &[u64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if !self.quad_sched.is_empty() {
            for &entry in &self.quad_sched {
                if entry & crate::simd::QUAD != 0 {
                    let c = (entry & !crate::simd::QUAD) as usize;
                    let (s, e) = self.check_range(c);
                    // SAFETY: the schedule was built for this exact graph
                    // (quads are in-bounds, equal-degree, variable-disjoint)
                    // and only when AVX2 was detected at construction.
                    unsafe {
                        crate::simd::min_sum_layered_quad(
                            c,
                            e - s,
                            &self.check_offsets,
                            &self.edge_var,
                            target_words,
                            scale,
                            clamp,
                            c2v,
                            posterior,
                        );
                    }
                } else {
                    self.min_sum_layered_check(
                        entry as usize,
                        scale,
                        clamp,
                        c2v,
                        posterior,
                        inputs,
                        target_words,
                    );
                }
            }
            return;
        }
        for c in 0..self.m {
            self.min_sum_layered_check(c, scale, clamp, c2v, posterior, inputs, target_words);
        }
    }

    /// Scalar min-sum layered update of one check (the fused two-pass form
    /// shared by the non-quad entries of the AVX2 schedule and by hosts
    /// without AVX2).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn min_sum_layered_check(
        &self,
        c: usize,
        scale: f64,
        clamp: f64,
        c2v: &mut [f64],
        posterior: &mut [f64],
        inputs: &mut [f64],
        target_words: &[u64],
    ) {
        {
            let (s, e) = self.check_range(c);
            let deg = e - s;
            let vars = &self.edge_var[s..e];
            let msgs = &mut c2v[s..e];
            let ins = &mut inputs[..deg];
            let mut min1 = f64::INFINITY;
            let mut min2 = f64::INFINITY;
            let mut min1_idx = 0usize;
            let mut neg = false;
            for (k, ((&v, msg), x)) in vars.iter().zip(msgs.iter()).zip(ins.iter_mut()).enumerate()
            {
                let val = clamp_sym(posterior[v as usize] - *msg, clamp);
                *x = val;
                let a = val.abs();
                let is_new_min = a < min1;
                let runner_up = sel(is_new_min, min1, a);
                min2 = sel(runner_up < min2, runner_up, min2);
                min1 = sel(is_new_min, a, min1);
                min1_idx = sel_idx(is_new_min, k, min1_idx);
                neg ^= val < 0.0;
            }
            let sign_target = Self::target_sign(target_words, c);
            let signed_scale = flip_if(sign_target * scale, neg);
            let mag1 = signed_scale * if min1.is_finite() { min1 } else { 0.0 };
            let mag2 = signed_scale * if min2.is_finite() { min2 } else { 0.0 };
            for (k, ((&v, msg), &x)) in vars.iter().zip(msgs.iter_mut()).zip(ins.iter()).enumerate()
            {
                let mag = sel(k == min1_idx, mag2, mag1);
                let out = flip_if(mag, x < 0.0);
                *msg = out;
                posterior[v as usize] = clamp_sym(x + out, clamp);
            }
        }
    }

    fn decode_layered_scratch(
        &self,
        target: &BitVec,
        scratch: &mut DecoderScratch,
    ) -> DecodeOutcome {
        let clamp = self.config.llr_clamp;
        let num_edges = self.edge_var.len();
        let words = self.n.div_ceil(64);
        let DecoderScratch {
            c2v,
            posterior,
            inputs,
            hard,
            syn,
            sp,
            ..
        } = scratch;
        let c2v = &mut c2v[..num_edges];
        // The caller seeded `posterior` with the channel priors.
        let posterior = &mut posterior[..self.n];
        let hard = &mut hard[..words];
        let target_words = target.as_words();

        c2v.fill(0.0);

        for iter in 1..=self.config.max_iterations {
            if let CheckKernel::MinSum { scale } = self.kernel {
                self.min_sum_layered_sweep(scale, clamp, c2v, posterior, inputs, target_words);
            } else {
                for c in 0..self.m {
                    let (s, e) = self.check_range(c);
                    let deg = e - s;
                    let ins = &mut inputs[..deg];
                    let out = &mut c2v[s..e];
                    // Extrinsic inputs: posterior minus this check's previous
                    // message, staged both into the input copy and in place.
                    for (k, o) in out.iter_mut().enumerate() {
                        let v = self.edge_var[s + k] as usize;
                        let x = (posterior[v] - *o).clamp(-clamp, clamp);
                        ins[k] = x;
                        *o = x;
                    }
                    self.kernel
                        .apply(out, Self::target_sign(target_words, c), sp);
                    for (k, o) in out.iter().enumerate() {
                        let v = self.edge_var[s + k] as usize;
                        posterior[v] = (ins[k] + *o).clamp(-clamp, clamp);
                    }
                }
            }
            hard.fill(0);
            for (v, &llr) in posterior.iter().enumerate() {
                hard[v >> 6] |= u64::from(llr < 0.0) << (v & 63);
            }
            if self.syndrome_ok_packed(hard, target_words, syn) {
                return DecodeOutcome {
                    error_pattern: self.pattern_from_words(hard),
                    converged: true,
                    iterations: iter,
                };
            }
        }
        DecodeOutcome {
            error_pattern: self.pattern_from_words(hard),
            converged: false,
            iterations: self.config.max_iterations,
        }
    }

    fn decode_flooding_reference(&self, target: &BitVec, channel: &[f64]) -> DecodeOutcome {
        let num_edges = self.edge_var.len();
        let clamp = self.config.llr_clamp;
        // Variable-to-check messages, initialised with the channel prior.
        let mut v2c: Vec<f64> = self.edge_var.iter().map(|&v| channel[v as usize]).collect();
        let mut c2v = vec![0.0f64; num_edges];
        let mut hard = BitVec::zeros(self.n);

        for iter in 1..=self.config.max_iterations {
            for c in 0..self.m {
                let (s, e) = self.check_range(c);
                let sign_target = if target.get(c) { -1.0 } else { 1.0 };
                let mut buf: Vec<f64> = v2c[s..e].to_vec();
                self.kernel.apply_alloc(&mut buf, sign_target);
                c2v[s..e].copy_from_slice(&buf);
            }
            for (v, &prior) in channel.iter().enumerate() {
                let (s, e) = self.var_range(v);
                let mut total = prior;
                for &edge in &self.var_edge[s..e] {
                    total += c2v[edge as usize];
                }
                hard.set(v, total < 0.0);
                for &edge in &self.var_edge[s..e] {
                    let edge = edge as usize;
                    v2c[edge] = (total - c2v[edge]).clamp(-clamp, clamp);
                }
            }
            if self.syndrome_ok_reference(&hard, target) {
                return DecodeOutcome {
                    error_pattern: hard,
                    converged: true,
                    iterations: iter,
                };
            }
        }
        DecodeOutcome {
            error_pattern: hard,
            converged: false,
            iterations: self.config.max_iterations,
        }
    }

    fn decode_layered_reference(&self, target: &BitVec, channel: &[f64]) -> DecodeOutcome {
        let num_edges = self.edge_var.len();
        let clamp = self.config.llr_clamp;
        let mut posterior: Vec<f64> = channel.to_vec();
        let mut c2v = vec![0.0f64; num_edges];
        let mut hard = BitVec::zeros(self.n);

        for iter in 1..=self.config.max_iterations {
            for c in 0..self.m {
                let (s, e) = self.check_range(c);
                let sign_target = if target.get(c) { -1.0 } else { 1.0 };
                // Extrinsic inputs: posterior minus this check's previous
                // message.
                let mut buf: Vec<f64> = (s..e)
                    .map(|edge| {
                        (posterior[self.edge_var[edge] as usize] - c2v[edge]).clamp(-clamp, clamp)
                    })
                    .collect();
                let inputs = buf.clone();
                self.kernel.apply_alloc(&mut buf, sign_target);
                for (k, edge) in (s..e).enumerate() {
                    posterior[self.edge_var[edge] as usize] =
                        (inputs[k] + buf[k]).clamp(-clamp, clamp);
                    c2v[edge] = buf[k];
                }
            }
            for (v, &llr) in posterior.iter().enumerate() {
                hard.set(v, llr < 0.0);
            }
            if self.syndrome_ok_reference(&hard, target) {
                return DecodeOutcome {
                    error_pattern: hard,
                    converged: true,
                    iterations: iter,
                };
            }
        }
        DecodeOutcome {
            error_pattern: hard,
            converged: false,
            iterations: self.config.max_iterations,
        }
    }

    /// Word-packed convergence check: computes the syndrome of the packed
    /// hard decisions by walking only the *set* bits (each flips its
    /// adjacent checks via the variable-major column map), then compares
    /// whole words against the target. Near convergence the hard-decision
    /// weight is a few percent of the block, so this touches a small
    /// fraction of the edges a full check-major parity sweep would.
    fn syndrome_ok_packed(&self, hard: &[u64], target_words: &[u64], syn: &mut [u64]) -> bool {
        let syn = &mut syn[..self.m.div_ceil(64)];
        syn.fill(0);
        for (wi, &word) in hard.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let v = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                let (s, e) = self.var_range(v);
                for &c in &self.var_check[s..e] {
                    syn[(c >> 6) as usize] ^= 1u64 << (c & 63);
                }
            }
        }
        syn == target_words
    }

    /// Bit-by-bit convergence check retained for the reference path.
    fn syndrome_ok_reference(&self, e: &BitVec, target: &BitVec) -> bool {
        for c in 0..self.m {
            let (s, end) = self.check_range(c);
            let mut p = false;
            for edge in s..end {
                p ^= e.get(self.edge_var[edge] as usize);
            }
            if p != target.get(c) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkd_types::rng::derive_rng;
    use rand::Rng;

    fn setup(n: usize, rate: f64, seed: u64) -> ParityCheckMatrix {
        ParityCheckMatrix::for_rate(n, rate, seed).unwrap()
    }

    fn random_error<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> BitVec {
        BitVec::random_with_density(rng, n, p)
    }

    fn decode_roundtrip(config: DecoderConfig, n: usize, rate: f64, qber: f64) -> (bool, usize) {
        let h = setup(n, rate, 99);
        let mut rng = derive_rng(7, "decoder-test");
        let truth = random_error(&mut rng, h.num_vars(), qber);
        let syndrome = h.syndrome(&truth);
        let dec = SyndromeDecoder::new(&h, config).unwrap();
        let out = dec.decode(&syndrome, qber, &[]).unwrap();
        let exact = out.converged && out.error_pattern == truth;
        (exact, out.iterations)
    }

    #[test]
    fn min_sum_layered_decodes_low_qber() {
        let (ok, iters) = decode_roundtrip(DecoderConfig::default(), 4096, 0.5, 0.02);
        assert!(ok, "rate-1/2 code must correct 2% errors");
        assert!(iters < 30, "should converge quickly, took {iters}");
    }

    #[test]
    fn sum_product_flooding_decodes_low_qber() {
        let cfg = DecoderConfig {
            algorithm: DecoderAlgorithm::SumProduct,
            schedule: Schedule::Flooding,
            ..DecoderConfig::default()
        };
        let (ok, _) = decode_roundtrip(cfg, 4096, 0.5, 0.03);
        assert!(
            ok,
            "sum-product flooding must correct 3% errors at rate 1/2"
        );
    }

    #[test]
    fn layered_converges_faster_than_flooding() {
        let h = setup(4096, 0.5, 5);
        let mut rng = derive_rng(8, "decoder-test");
        let truth = random_error(&mut rng, h.num_vars(), 0.04);
        let syndrome = h.syndrome(&truth);
        let layered = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let flooding = SyndromeDecoder::new(
            &h,
            DecoderConfig {
                schedule: Schedule::Flooding,
                ..DecoderConfig::default()
            },
        )
        .unwrap();
        let out_l = layered.decode(&syndrome, 0.04, &[]).unwrap();
        let out_f = flooding.decode(&syndrome, 0.04, &[]).unwrap();
        assert!(out_l.converged && out_f.converged);
        assert!(
            out_l.iterations <= out_f.iterations,
            "layered ({}) should not need more iterations than flooding ({})",
            out_l.iterations,
            out_f.iterations
        );
    }

    #[test]
    fn decoder_fails_gracefully_beyond_capacity() {
        // Rate 0.8 code cannot correct 15% errors; decoder must report
        // non-convergence, not wrong answers flagged as success.
        let h = setup(2048, 0.8, 6);
        let mut rng = derive_rng(9, "decoder-test");
        let truth = random_error(&mut rng, h.num_vars(), 0.15);
        let syndrome = h.syndrome(&truth);
        let dec = SyndromeDecoder::new(
            &h,
            DecoderConfig {
                max_iterations: 30,
                ..DecoderConfig::default()
            },
        )
        .unwrap();
        let out = dec.decode(&syndrome, 0.15, &[]).unwrap();
        if out.converged {
            // If it converged it must satisfy the syndrome (a valid coset
            // member), even if not the original pattern.
            assert!(h.syndrome_matches(&out.error_pattern, &syndrome));
        } else {
            assert_eq!(out.iterations, 30);
        }
    }

    #[test]
    fn zero_syndrome_and_tiny_qber_decodes_to_zero() {
        let h = setup(1024, 0.5, 10);
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let out = dec
            .decode(&BitVec::zeros(h.num_checks()), 0.001, &[])
            .unwrap();
        assert!(out.converged);
        assert_eq!(out.error_pattern.count_ones(), 0);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn llr_overrides_pin_shortened_positions() {
        let h = setup(1024, 0.5, 11);
        let mut rng = derive_rng(12, "decoder-test");
        let mut truth = random_error(&mut rng, h.num_vars(), 0.03);
        // Pretend the first 100 variables are shortened to zero.
        for v in 0..100 {
            truth.set(v, false);
        }
        let syndrome = h.syndrome(&truth);
        let overrides: Vec<(usize, f64)> = (0..100).map(|v| (v, 25.0)).collect();
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let out = dec.decode(&syndrome, 0.03, &overrides).unwrap();
        assert!(out.converged);
        for v in 0..100 {
            assert!(
                !out.error_pattern.get(v),
                "shortened variable {v} must stay zero"
            );
        }
        assert_eq!(out.error_pattern, truth);
    }

    #[test]
    fn dimension_and_parameter_errors() {
        let h = setup(512, 0.5, 13);
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        assert!(matches!(
            dec.decode(&BitVec::zeros(10), 0.02, &[]),
            Err(QkdError::DimensionMismatch { .. })
        ));
        assert!(dec
            .decode(&BitVec::zeros(h.num_checks()), 0.0, &[])
            .is_err());
        assert!(dec
            .decode(&BitVec::zeros(h.num_checks()), 0.5, &[])
            .is_err());
        assert!(matches!(
            dec.decode_reference(&BitVec::zeros(10), 0.02, &[]),
            Err(QkdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let h = setup(512, 0.5, 14);
        let bad = DecoderConfig {
            max_iterations: 0,
            ..DecoderConfig::default()
        };
        assert!(SyndromeDecoder::new(&h, bad).is_err());
        let bad = DecoderConfig {
            algorithm: DecoderAlgorithm::MinSum { scale_pct: 0 },
            ..DecoderConfig::default()
        };
        assert!(SyndromeDecoder::new(&h, bad).is_err());
        let bad = DecoderConfig {
            llr_clamp: -1.0,
            ..DecoderConfig::default()
        };
        assert!(SyndromeDecoder::new(&h, bad).is_err());
    }

    #[test]
    fn quasi_cyclic_code_decodes_too() {
        let h = ParityCheckMatrix::quasi_cyclic(4096, 2048, 64, 6, 21).unwrap();
        let mut rng = derive_rng(22, "decoder-test");
        let truth = random_error(&mut rng, 4096, 0.02);
        let syndrome = h.syndrome(&truth);
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let out = dec.decode(&syndrome, 0.02, &[]).unwrap();
        assert!(out.converged);
        assert_eq!(out.error_pattern, truth);
    }

    /// Every algorithm × schedule combination must produce bit-identical
    /// outcomes between the scratch and reference paths, including with
    /// overrides and at non-converging operating points.
    #[test]
    fn scratch_path_is_bit_identical_to_reference() {
        let configs = [
            (DecoderAlgorithm::NORMALIZED_MIN_SUM, Schedule::Layered),
            (DecoderAlgorithm::NORMALIZED_MIN_SUM, Schedule::Flooding),
            (DecoderAlgorithm::SumProduct, Schedule::Layered),
            (DecoderAlgorithm::SumProduct, Schedule::Flooding),
        ];
        let h = setup(2048, 0.5, 33);
        let mut rng = derive_rng(34, "decoder-equiv");
        let mut scratch = DecoderScratch::new();
        for (algorithm, schedule) in configs {
            let config = DecoderConfig {
                algorithm,
                schedule,
                max_iterations: 25,
                ..DecoderConfig::default()
            };
            let dec = SyndromeDecoder::new(&h, config).unwrap();
            for &(qber, true_qber) in &[(0.02, 0.02), (0.02, 0.12)] {
                let truth = random_error(&mut rng, h.num_vars(), true_qber);
                let syndrome = h.syndrome(&truth);
                let overrides: Vec<(usize, f64)> = (0..40).map(|v| (v, 25.0)).collect();
                let reference = dec.decode_reference(&syndrome, qber, &overrides).unwrap();
                let optimized = dec
                    .decode_with_scratch(&syndrome, qber, &overrides, &mut scratch)
                    .unwrap();
                assert_eq!(
                    reference, optimized,
                    "outcomes diverged for {algorithm:?}/{schedule:?} at qber {true_qber}"
                );
            }
        }
    }

    /// One scratch serves decoders of different sizes in any order.
    #[test]
    fn scratch_reuse_across_block_sizes_is_safe() {
        let mut rng = derive_rng(35, "decoder-mixed");
        let mut scratch = DecoderScratch::new();
        for &(n, seed) in &[(1024usize, 1u64), (256, 2), (2048, 3), (512, 4)] {
            let h = setup(n, 0.5, seed);
            let truth = random_error(&mut rng, h.num_vars(), 0.02);
            let syndrome = h.syndrome(&truth);
            let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
            let reference = dec.decode_reference(&syndrome, 0.02, &[]).unwrap();
            let optimized = dec
                .decode_with_scratch(&syndrome, 0.02, &[], &mut scratch)
                .unwrap();
            assert_eq!(
                reference, optimized,
                "size {n} diverged with reused scratch"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The min-sum flooding scratch path — which dispatches the AVX2
            /// quad kernel on hosts that have it — must stay bit-identical
            /// to the all-scalar reference decoder over random codes, error
            /// densities and LLR overrides (the layered analogue of this
            /// guarantee is covered by
            /// `scratch_path_is_bit_identical_to_reference`).
            #[test]
            fn flooding_quad_kernel_is_bit_identical_to_scalar(
                seed in any::<u64>(),
                n_exp in 8u32..12,
                true_qber in 0.005f64..0.10,
                overrides in 0usize..32,
            ) {
                let n = 1usize << n_exp;
                let h = setup(n, 0.5, seed % 1000);
                let mut rng = derive_rng(seed, "flooding-quad-equiv");
                let truth = random_error(&mut rng, h.num_vars(), true_qber);
                let syndrome = h.syndrome(&truth);
                let config = DecoderConfig {
                    schedule: Schedule::Flooding,
                    max_iterations: 30,
                    ..DecoderConfig::default()
                };
                let dec = SyndromeDecoder::new(&h, config).unwrap();
                let pins: Vec<(usize, f64)> =
                    (0..overrides).map(|v| (v, 25.0)).collect();
                let mut scratch = DecoderScratch::new();
                let reference =
                    dec.decode_reference(&syndrome, 0.03, &pins).unwrap();
                let optimized = dec
                    .decode_with_scratch(&syndrome, 0.03, &pins, &mut scratch)
                    .unwrap();
                prop_assert_eq!(reference, optimized);
            }
        }
    }

    #[test]
    fn check_kernel_matches_algorithm_parameters() {
        match CheckKernel::new(DecoderAlgorithm::MinSum { scale_pct: 50 }) {
            CheckKernel::MinSum { scale } => assert!((scale - 0.5).abs() < 1e-12),
            other => panic!("unexpected kernel {other:?}"),
        }
        // The kernel is self-inverse on signs: a single negative input keeps
        // its magnitude pairing and flips every other output's sign.
        let kernel = CheckKernel::new(DecoderAlgorithm::NORMALIZED_MIN_SUM);
        let mut values = [1.0, -2.0, 3.0];
        let mut sp = SumProductScratch::default();
        kernel.apply(&mut values, 1.0, &mut sp);
        assert!((values[0] - -1.5).abs() < 1e-12, "got {values:?}");
        assert!((values[1] - 0.75).abs() < 1e-12, "got {values:?}");
        assert!((values[2] - -0.75).abs() < 1e-12, "got {values:?}");
    }
}
