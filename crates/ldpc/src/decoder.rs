//! Belief-propagation syndrome decoders.
//!
//! Reconciliation uses *syndrome decoding*: given Bob's key `y`, Alice's
//! syndrome `s_A = H x`, and Bob's own syndrome `s_B = H y`, Bob decodes the
//! error pattern `e` with `H e = s_A ⊕ s_B` under an i.i.d. bit-flip prior at
//! the estimated QBER, then sets `x = y ⊕ e`.
//!
//! Two message-passing algorithms (sum-product and normalised min-sum) and
//! two schedules (flooding and layered) are provided; the combinations are the
//! ablation axes of the evaluation (Table 2, `ablate-decoder`).

use serde::{Deserialize, Serialize};

use qkd_types::{BitVec, QkdError, Result};

use crate::matrix::ParityCheckMatrix;

/// Message-passing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecoderAlgorithm {
    /// Exact sum-product (tanh rule). Best threshold, slowest.
    SumProduct,
    /// Normalised min-sum with the given scale factor numerator over 100
    /// (e.g. 75 means messages are scaled by 0.75). Hardware friendly.
    MinSum {
        /// Normalisation factor in hundredths (75 ⇒ 0.75).
        scale_pct: u8,
    },
}

impl DecoderAlgorithm {
    /// The conventional normalised min-sum variant (scale 0.75).
    pub const NORMALIZED_MIN_SUM: DecoderAlgorithm = DecoderAlgorithm::MinSum { scale_pct: 75 };
}

/// Message-update schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// All checks updated from the previous iteration's variable messages.
    Flooding,
    /// Checks processed sequentially, posteriors updated immediately
    /// (converges in roughly half the iterations).
    Layered,
}

/// Decoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// Algorithm to run.
    pub algorithm: DecoderAlgorithm,
    /// Schedule to use.
    pub schedule: Schedule,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Magnitude at which LLRs are clamped for numerical stability.
    pub llr_clamp: f64,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            algorithm: DecoderAlgorithm::NORMALIZED_MIN_SUM,
            schedule: Schedule::Layered,
            max_iterations: 60,
            llr_clamp: 30.0,
        }
    }
}

impl DecoderConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        if self.max_iterations == 0 {
            return Err(QkdError::invalid_parameter(
                "max_iterations",
                "must be at least 1",
            ));
        }
        if self.llr_clamp <= 0.0 {
            return Err(QkdError::invalid_parameter("llr_clamp", "must be positive"));
        }
        if let DecoderAlgorithm::MinSum { scale_pct } = self.algorithm {
            if scale_pct == 0 || scale_pct > 100 {
                return Err(QkdError::invalid_parameter(
                    "scale_pct",
                    "must lie in 1..=100",
                ));
            }
        }
        Ok(())
    }
}

/// Result of a decode attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeOutcome {
    /// The decoded error pattern (only meaningful when `converged`).
    pub error_pattern: BitVec,
    /// Whether the syndrome constraint was satisfied.
    pub converged: bool,
    /// Iterations actually executed.
    pub iterations: usize,
}

/// A belief-propagation syndrome decoder bound to one parity-check matrix.
///
/// The decoder owns per-edge message buffers sized for its matrix, so a single
/// instance can decode many blocks without reallocating.
#[derive(Debug, Clone)]
pub struct SyndromeDecoder {
    config: DecoderConfig,
    /// Flattened (check-major) variable indices.
    edge_var: Vec<usize>,
    /// Start offset of each check's edges in `edge_var`.
    check_offsets: Vec<usize>,
    /// For each variable, the edge ids incident to it.
    var_edges: Vec<Vec<usize>>,
    n: usize,
    m: usize,
}

impl SyndromeDecoder {
    /// Builds a decoder for the given matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] if the configuration is invalid.
    pub fn new(matrix: &ParityCheckMatrix, config: DecoderConfig) -> Result<Self> {
        config.validate()?;
        let m = matrix.num_checks();
        let n = matrix.num_vars();
        let mut edge_var = Vec::with_capacity(matrix.num_edges());
        let mut check_offsets = Vec::with_capacity(m + 1);
        let mut var_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        check_offsets.push(0);
        for c in 0..m {
            for &v in matrix.check_neighbors(c) {
                var_edges[v].push(edge_var.len());
                edge_var.push(v);
            }
            check_offsets.push(edge_var.len());
        }
        Ok(Self {
            config,
            edge_var,
            check_offsets,
            var_edges,
            n,
            m,
        })
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Codeword length this decoder expects.
    pub fn block_len(&self) -> usize {
        self.n
    }

    /// Syndrome length this decoder expects.
    pub fn syndrome_len(&self) -> usize {
        self.m
    }

    /// Decodes an error pattern `e` with `H e = target_syndrome` under an
    /// i.i.d. flip prior `qber`, with optional per-variable LLR overrides.
    ///
    /// `llr_overrides` assigns a fixed prior LLR to selected variables:
    /// shortened (known-zero) positions use a large positive LLR, punctured
    /// (unknown) positions use zero.
    ///
    /// # Errors
    ///
    /// * [`QkdError::DimensionMismatch`] when the syndrome length is wrong.
    /// * [`QkdError::InvalidParameter`] when `qber` is outside `(0, 0.5)`.
    pub fn decode(
        &self,
        target_syndrome: &BitVec,
        qber: f64,
        llr_overrides: &[(usize, f64)],
    ) -> Result<DecodeOutcome> {
        if target_syndrome.len() != self.m {
            return Err(QkdError::DimensionMismatch {
                context: "syndrome decoding",
                expected: self.m,
                actual: target_syndrome.len(),
            });
        }
        if !(0.0 < qber && qber < 0.5) {
            return Err(QkdError::invalid_parameter(
                "qber",
                "must lie strictly in (0, 0.5)",
            ));
        }

        let clamp = self.config.llr_clamp;
        let prior = ((1.0 - qber) / qber).ln().min(clamp);
        let mut channel = vec![prior; self.n];
        for &(v, llr) in llr_overrides {
            if v < self.n {
                channel[v] = llr.clamp(-clamp, clamp);
            }
        }

        match self.config.schedule {
            Schedule::Flooding => self.decode_flooding(target_syndrome, &channel),
            Schedule::Layered => self.decode_layered(target_syndrome, &channel),
        }
    }

    fn check_update(&self, values: &mut [f64], sign_target: f64) {
        // `values` holds the incoming variable-to-check messages for one check
        // and is overwritten with the outgoing check-to-variable messages.
        match self.config.algorithm {
            DecoderAlgorithm::SumProduct => {
                let deg = values.len();
                // Product of tanh(v/2) excluding self, via prefix/suffix products.
                let tanhs: Vec<f64> = values.iter().map(|&v| (v / 2.0).tanh()).collect();
                let mut prefix = vec![1.0; deg + 1];
                for i in 0..deg {
                    prefix[i + 1] = prefix[i] * tanhs[i];
                }
                let mut suffix = vec![1.0; deg + 1];
                for i in (0..deg).rev() {
                    suffix[i] = suffix[i + 1] * tanhs[i];
                }
                for i in 0..deg {
                    let prod =
                        (prefix[i] * suffix[i + 1] * sign_target).clamp(-0.999_999, 0.999_999);
                    values[i] = 2.0 * prod.atanh();
                }
            }
            DecoderAlgorithm::MinSum { scale_pct } => {
                let scale = f64::from(scale_pct) / 100.0;
                let deg = values.len();
                // Two smallest magnitudes and the overall sign product.
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min1_idx = 0usize;
                let mut sign_prod = sign_target;
                for (i, &v) in values.iter().enumerate() {
                    let a = v.abs();
                    if a < min1 {
                        min2 = min1;
                        min1 = a;
                        min1_idx = i;
                    } else if a < min2 {
                        min2 = a;
                    }
                    if v < 0.0 {
                        sign_prod = -sign_prod;
                    }
                }
                for (i, v) in values.iter_mut().enumerate() {
                    let self_sign = if *v < 0.0 { -1.0 } else { 1.0 };
                    let mag = if i == min1_idx { min2 } else { min1 };
                    *v = sign_prod * self_sign * scale * if mag.is_finite() { mag } else { 0.0 };
                }
                let _ = deg;
            }
        }
    }

    fn decode_flooding(&self, target: &BitVec, channel: &[f64]) -> Result<DecodeOutcome> {
        let num_edges = self.edge_var.len();
        let clamp = self.config.llr_clamp;
        // Variable-to-check messages, initialised with the channel prior.
        let mut v2c: Vec<f64> = self.edge_var.iter().map(|&v| channel[v]).collect();
        let mut c2v = vec![0.0f64; num_edges];
        let mut hard = BitVec::zeros(self.n);

        for iter in 1..=self.config.max_iterations {
            // Check node update.
            for c in 0..self.m {
                let (s, e) = (self.check_offsets[c], self.check_offsets[c + 1]);
                let sign_target = if target.get(c) { -1.0 } else { 1.0 };
                let mut buf: Vec<f64> = v2c[s..e].to_vec();
                self.check_update(&mut buf, sign_target);
                c2v[s..e].copy_from_slice(&buf);
            }
            // Variable node update + hard decision.
            for (v, &prior) in channel.iter().enumerate() {
                let total: f64 = prior + self.var_edges[v].iter().map(|&e| c2v[e]).sum::<f64>();
                hard.set(v, total < 0.0);
                for &e in &self.var_edges[v] {
                    v2c[e] = (total - c2v[e]).clamp(-clamp, clamp);
                }
            }
            if self.syndrome_ok(&hard, target) {
                return Ok(DecodeOutcome {
                    error_pattern: hard,
                    converged: true,
                    iterations: iter,
                });
            }
        }
        Ok(DecodeOutcome {
            error_pattern: hard,
            converged: false,
            iterations: self.config.max_iterations,
        })
    }

    fn decode_layered(&self, target: &BitVec, channel: &[f64]) -> Result<DecodeOutcome> {
        let num_edges = self.edge_var.len();
        let clamp = self.config.llr_clamp;
        // Posterior LLR per variable; per-edge check-to-variable messages.
        let mut posterior: Vec<f64> = channel.to_vec();
        let mut c2v = vec![0.0f64; num_edges];
        let mut hard = BitVec::zeros(self.n);

        for iter in 1..=self.config.max_iterations {
            for c in 0..self.m {
                let (s, e) = (self.check_offsets[c], self.check_offsets[c + 1]);
                let sign_target = if target.get(c) { -1.0 } else { 1.0 };
                // Extrinsic inputs: posterior minus this check's previous message.
                let mut buf: Vec<f64> = (s..e)
                    .map(|edge| (posterior[self.edge_var[edge]] - c2v[edge]).clamp(-clamp, clamp))
                    .collect();
                let inputs = buf.clone();
                self.check_update(&mut buf, sign_target);
                for (k, edge) in (s..e).enumerate() {
                    posterior[self.edge_var[edge]] = (inputs[k] + buf[k]).clamp(-clamp, clamp);
                    c2v[edge] = buf[k];
                }
            }
            for (v, &llr) in posterior.iter().enumerate() {
                hard.set(v, llr < 0.0);
            }
            if self.syndrome_ok(&hard, target) {
                return Ok(DecodeOutcome {
                    error_pattern: hard,
                    converged: true,
                    iterations: iter,
                });
            }
        }
        Ok(DecodeOutcome {
            error_pattern: hard,
            converged: false,
            iterations: self.config.max_iterations,
        })
    }

    fn syndrome_ok(&self, e: &BitVec, target: &BitVec) -> bool {
        for c in 0..self.m {
            let (s, end) = (self.check_offsets[c], self.check_offsets[c + 1]);
            let mut p = false;
            for edge in s..end {
                p ^= e.get(self.edge_var[edge]);
            }
            if p != target.get(c) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkd_types::rng::derive_rng;
    use rand::Rng;

    fn setup(n: usize, rate: f64, seed: u64) -> ParityCheckMatrix {
        ParityCheckMatrix::for_rate(n, rate, seed).unwrap()
    }

    fn random_error<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> BitVec {
        BitVec::random_with_density(rng, n, p)
    }

    fn decode_roundtrip(config: DecoderConfig, n: usize, rate: f64, qber: f64) -> (bool, usize) {
        let h = setup(n, rate, 99);
        let mut rng = derive_rng(7, "decoder-test");
        let truth = random_error(&mut rng, h.num_vars(), qber);
        let syndrome = h.syndrome(&truth);
        let dec = SyndromeDecoder::new(&h, config).unwrap();
        let out = dec.decode(&syndrome, qber, &[]).unwrap();
        let exact = out.converged && out.error_pattern == truth;
        (exact, out.iterations)
    }

    #[test]
    fn min_sum_layered_decodes_low_qber() {
        let (ok, iters) = decode_roundtrip(DecoderConfig::default(), 4096, 0.5, 0.02);
        assert!(ok, "rate-1/2 code must correct 2% errors");
        assert!(iters < 30, "should converge quickly, took {iters}");
    }

    #[test]
    fn sum_product_flooding_decodes_low_qber() {
        let cfg = DecoderConfig {
            algorithm: DecoderAlgorithm::SumProduct,
            schedule: Schedule::Flooding,
            ..DecoderConfig::default()
        };
        let (ok, _) = decode_roundtrip(cfg, 4096, 0.5, 0.03);
        assert!(
            ok,
            "sum-product flooding must correct 3% errors at rate 1/2"
        );
    }

    #[test]
    fn layered_converges_faster_than_flooding() {
        let h = setup(4096, 0.5, 5);
        let mut rng = derive_rng(8, "decoder-test");
        let truth = random_error(&mut rng, h.num_vars(), 0.04);
        let syndrome = h.syndrome(&truth);
        let layered = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let flooding = SyndromeDecoder::new(
            &h,
            DecoderConfig {
                schedule: Schedule::Flooding,
                ..DecoderConfig::default()
            },
        )
        .unwrap();
        let out_l = layered.decode(&syndrome, 0.04, &[]).unwrap();
        let out_f = flooding.decode(&syndrome, 0.04, &[]).unwrap();
        assert!(out_l.converged && out_f.converged);
        assert!(
            out_l.iterations <= out_f.iterations,
            "layered ({}) should not need more iterations than flooding ({})",
            out_l.iterations,
            out_f.iterations
        );
    }

    #[test]
    fn decoder_fails_gracefully_beyond_capacity() {
        // Rate 0.8 code cannot correct 15% errors; decoder must report
        // non-convergence, not wrong answers flagged as success.
        let h = setup(2048, 0.8, 6);
        let mut rng = derive_rng(9, "decoder-test");
        let truth = random_error(&mut rng, h.num_vars(), 0.15);
        let syndrome = h.syndrome(&truth);
        let dec = SyndromeDecoder::new(
            &h,
            DecoderConfig {
                max_iterations: 30,
                ..DecoderConfig::default()
            },
        )
        .unwrap();
        let out = dec.decode(&syndrome, 0.15, &[]).unwrap();
        if out.converged {
            // If it converged it must satisfy the syndrome (a valid coset
            // member), even if not the original pattern.
            assert!(h.syndrome_matches(&out.error_pattern, &syndrome));
        } else {
            assert_eq!(out.iterations, 30);
        }
    }

    #[test]
    fn zero_syndrome_and_tiny_qber_decodes_to_zero() {
        let h = setup(1024, 0.5, 10);
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let out = dec
            .decode(&BitVec::zeros(h.num_checks()), 0.001, &[])
            .unwrap();
        assert!(out.converged);
        assert_eq!(out.error_pattern.count_ones(), 0);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn llr_overrides_pin_shortened_positions() {
        let h = setup(1024, 0.5, 11);
        let mut rng = derive_rng(12, "decoder-test");
        let mut truth = random_error(&mut rng, h.num_vars(), 0.03);
        // Pretend the first 100 variables are shortened to zero.
        for v in 0..100 {
            truth.set(v, false);
        }
        let syndrome = h.syndrome(&truth);
        let overrides: Vec<(usize, f64)> = (0..100).map(|v| (v, 25.0)).collect();
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let out = dec.decode(&syndrome, 0.03, &overrides).unwrap();
        assert!(out.converged);
        for v in 0..100 {
            assert!(
                !out.error_pattern.get(v),
                "shortened variable {v} must stay zero"
            );
        }
        assert_eq!(out.error_pattern, truth);
    }

    #[test]
    fn dimension_and_parameter_errors() {
        let h = setup(512, 0.5, 13);
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        assert!(matches!(
            dec.decode(&BitVec::zeros(10), 0.02, &[]),
            Err(QkdError::DimensionMismatch { .. })
        ));
        assert!(dec
            .decode(&BitVec::zeros(h.num_checks()), 0.0, &[])
            .is_err());
        assert!(dec
            .decode(&BitVec::zeros(h.num_checks()), 0.5, &[])
            .is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let h = setup(512, 0.5, 14);
        let bad = DecoderConfig {
            max_iterations: 0,
            ..DecoderConfig::default()
        };
        assert!(SyndromeDecoder::new(&h, bad).is_err());
        let bad = DecoderConfig {
            algorithm: DecoderAlgorithm::MinSum { scale_pct: 0 },
            ..DecoderConfig::default()
        };
        assert!(SyndromeDecoder::new(&h, bad).is_err());
        let bad = DecoderConfig {
            llr_clamp: -1.0,
            ..DecoderConfig::default()
        };
        assert!(SyndromeDecoder::new(&h, bad).is_err());
    }

    #[test]
    fn quasi_cyclic_code_decodes_too() {
        let h = ParityCheckMatrix::quasi_cyclic(4096, 2048, 64, 6, 21).unwrap();
        let mut rng = derive_rng(22, "decoder-test");
        let truth = random_error(&mut rng, 4096, 0.02);
        let syndrome = h.syndrome(&truth);
        let dec = SyndromeDecoder::new(&h, DecoderConfig::default()).unwrap();
        let out = dec.decode(&syndrome, 0.02, &[]).unwrap();
        assert!(out.converged);
        assert_eq!(out.error_pattern, truth);
    }
}
