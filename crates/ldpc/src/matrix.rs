//! Sparse parity-check matrices and their construction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qkd_types::rng::derive_rng;
use qkd_types::{BitVec, QkdError, Result};

/// How a parity-check matrix was (or should be) constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Construction {
    /// Progressive edge growth: greedy girth-maximising placement. Best
    /// decoding performance, slower to build.
    Peg,
    /// Quasi-cyclic from a random protograph: structured, fast to build,
    /// hardware-friendly (this is what FPGA implementations use).
    QuasiCyclic {
        /// Circulant (lifting) size.
        circulant: usize,
    },
}

/// A sparse binary parity-check matrix in adjacency form.
///
/// Both orientations of the bipartite Tanner graph are stored: the variable
/// indices of every check row (`check_to_var`) and the check indices of every
/// variable column (`var_to_check`). Decoders index messages by *edge id*,
/// which is the position of the entry in the flattened check-major edge list.
///
/// Syndrome computation is word-packed: construction precomputes, per check,
/// the 64-bit words its variables fall into and a parity mask per word, so
/// [`ParityCheckMatrix::syndrome`] reads whole words of the codeword instead
/// of walking it bit by bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityCheckMatrix {
    n: usize,
    m: usize,
    check_to_var: Vec<Vec<usize>>,
    var_to_check: Vec<Vec<usize>>,
    construction: Construction,
    /// Word-packed parity masks: check `c` covers entries
    /// `mask_offsets[c]..mask_offsets[c + 1]` of (`mask_word`, `mask_bits`).
    /// A deterministic function of `check_to_var`, rebuilt by every
    /// constructor.
    mask_word: Vec<u32>,
    mask_bits: Vec<u64>,
    mask_offsets: Vec<u32>,
}

impl ParityCheckMatrix {
    /// Number of variable nodes (codeword length).
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of check nodes (syndrome length).
    pub fn num_checks(&self) -> usize {
        self.m
    }

    /// Design rate `1 - m/n`.
    pub fn rate(&self) -> f64 {
        1.0 - self.m as f64 / self.n as f64
    }

    /// Total number of edges in the Tanner graph.
    pub fn num_edges(&self) -> usize {
        self.check_to_var.iter().map(Vec::len).sum()
    }

    /// Variable neighbours of check `c`.
    pub fn check_neighbors(&self, c: usize) -> &[usize] {
        &self.check_to_var[c]
    }

    /// Check neighbours of variable `v`.
    pub fn var_neighbors(&self, v: usize) -> &[usize] {
        &self.var_to_check[v]
    }

    /// The construction used to build this matrix.
    pub fn construction(&self) -> Construction {
        self.construction
    }

    /// Computes the syndrome `H x` with the word-packed parity masks.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn syndrome(&self, x: &BitVec) -> BitVec {
        let mut s = BitVec::zeros(self.m);
        self.syndrome_into(x, &mut s);
        s
    }

    /// Computes the syndrome `H x` into `out`, resizing it to the syndrome
    /// length. Reusing one output buffer across calls (e.g. across the
    /// attempts of a rate ladder) keeps syndrome computation allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn syndrome_into(&self, x: &BitVec, out: &mut BitVec) {
        assert_eq!(
            x.len(),
            self.n,
            "codeword length must equal the number of variables"
        );
        out.reset_zeros(self.m);
        let words = x.as_words();
        let out_words = out.as_words_mut();
        for c in 0..self.m {
            let (s, e) = (
                self.mask_offsets[c] as usize,
                self.mask_offsets[c + 1] as usize,
            );
            // popcount(a) + popcount(b) ≡ popcount(a ^ b) (mod 2), so the
            // masked words fold with XOR before a single popcount.
            let mut acc = 0u64;
            for k in s..e {
                acc ^= words[self.mask_word[k] as usize] & self.mask_bits[k];
            }
            out_words[c >> 6] |= u64::from(acc.count_ones() & 1) << (c & 63);
        }
    }

    /// Bit-by-bit syndrome computation, retained as the reference the packed
    /// implementation is property-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn syndrome_reference(&self, x: &BitVec) -> BitVec {
        assert_eq!(
            x.len(),
            self.n,
            "codeword length must equal the number of variables"
        );
        let mut s = BitVec::zeros(self.m);
        for (c, vars) in self.check_to_var.iter().enumerate() {
            let mut p = false;
            for &v in vars {
                p ^= x.get(v);
            }
            if p {
                s.set(c, true);
            }
        }
        s
    }

    /// Returns `true` when `H e` equals `target`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match.
    pub fn syndrome_matches(&self, e: &BitVec, target: &BitVec) -> bool {
        assert_eq!(
            target.len(),
            self.m,
            "target syndrome length must equal the number of checks"
        );
        self.syndrome(e) == *target
    }

    /// Average variable-node degree.
    pub fn avg_var_degree(&self) -> f64 {
        self.num_edges() as f64 / self.n as f64
    }

    /// Average check-node degree.
    pub fn avg_check_degree(&self) -> f64 {
        self.num_edges() as f64 / self.m as f64
    }

    /// Builds a matrix with the progressive-edge-growth (PEG) algorithm.
    ///
    /// Variables are assigned `var_degree` edges each; every edge goes to the
    /// check that is farthest from the variable in the current graph (or, when
    /// unreachable checks exist, the unreachable check of lowest degree),
    /// which greedily maximises girth.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when the dimensions are
    /// degenerate (`m >= n`, zero sizes, or a variable degree that exceeds the
    /// number of checks).
    pub fn peg(n: usize, m: usize, var_degree: usize, seed: u64) -> Result<Self> {
        validate_dims(n, m)?;
        if var_degree == 0 || var_degree > m {
            return Err(QkdError::invalid_parameter(
                "var_degree",
                format!("must lie in 1..={m}, got {var_degree}"),
            ));
        }
        let mut rng = derive_rng(seed, "peg-construction");
        let mut check_to_var: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut var_to_check: Vec<Vec<usize>> = vec![Vec::new(); n];

        for v in 0..n {
            for k in 0..var_degree {
                let target = if k == 0 {
                    // First edge: lowest-degree check (ties broken randomly).
                    lowest_degree_check(&check_to_var, &mut rng, &var_to_check[v])
                } else {
                    // Subsequent edges: BFS from v to find the most distant
                    // checks; among unreachable (or farthest) checks pick the
                    // one with the lowest degree.
                    farthest_check(&check_to_var, &var_to_check, v, &mut rng)
                };
                check_to_var[target].push(v);
                var_to_check[v].push(target);
            }
        }

        Ok(Self::from_adjacency(
            n,
            m,
            check_to_var,
            var_to_check,
            Construction::Peg,
        ))
    }

    /// Builds a quasi-cyclic matrix from a random protograph.
    ///
    /// The base graph has `m / circulant` check rows and `n / circulant`
    /// variable columns; each base entry present is lifted to a `circulant ×
    /// circulant` cyclic permutation with a random shift.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when `circulant` does not divide
    /// both dimensions or the dimensions are degenerate.
    pub fn quasi_cyclic(
        n: usize,
        m: usize,
        circulant: usize,
        base_row_weight: usize,
        seed: u64,
    ) -> Result<Self> {
        validate_dims(n, m)?;
        if circulant == 0 || n % circulant != 0 || m % circulant != 0 {
            return Err(QkdError::invalid_parameter(
                "circulant",
                format!("must divide both n={n} and m={m}"),
            ));
        }
        let base_cols = n / circulant;
        let base_rows = m / circulant;
        if base_row_weight == 0 || base_row_weight > base_cols {
            return Err(QkdError::invalid_parameter(
                "base_row_weight",
                format!("must lie in 1..={base_cols}"),
            ));
        }
        if base_row_weight * base_rows < base_cols * 2 {
            return Err(QkdError::invalid_parameter(
                "base_row_weight",
                format!(
                    "too sparse: {base_rows} base rows of weight {base_row_weight} cannot give every one of {base_cols} base columns degree >= 2"
                ),
            ));
        }
        let mut rng = derive_rng(seed, "qc-construction");

        // Column-driven base graph: every base column receives a target column
        // weight (total edges / columns, at least 2), each edge going to the
        // currently least-loaded row it is not yet connected to. This keeps
        // both column and row degrees near-regular — weight-1 variable columns
        // would cripple belief propagation.
        let total_edges = base_row_weight * base_rows;
        let col_weight = ((total_edges as f64 / base_cols as f64).round() as usize).max(2);
        let mut base: Vec<Vec<usize>> = vec![Vec::new(); base_rows];
        for c in 0..base_cols {
            for _ in 0..col_weight {
                let min_load = base
                    .iter()
                    .filter(|row| !row.contains(&c))
                    .map(|row| row.len())
                    .min()
                    .unwrap_or(0);
                let candidates: Vec<usize> = base
                    .iter()
                    .enumerate()
                    .filter(|(_, row)| !row.contains(&c) && row.len() == min_load)
                    .map(|(r, _)| r)
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let r = candidates[rng.gen_range(0..candidates.len())];
                base[r].push(c);
            }
        }

        let mut check_to_var: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut var_to_check: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (br, cols) in base.iter().enumerate() {
            for &bc in cols {
                let shift = rng.gen_range(0..circulant);
                for i in 0..circulant {
                    let check = br * circulant + i;
                    let var = bc * circulant + (i + shift) % circulant;
                    check_to_var[check].push(var);
                    var_to_check[var].push(check);
                }
            }
        }

        Ok(Self::from_adjacency(
            n,
            m,
            check_to_var,
            var_to_check,
            Construction::QuasiCyclic { circulant },
        ))
    }

    /// Finishes a construction: stores the adjacency and precomputes the
    /// word-packed parity masks. Duplicate entries in a row (none in the
    /// standard constructions) cancel in GF(2), so masks are XOR-merged.
    fn from_adjacency(
        n: usize,
        m: usize,
        check_to_var: Vec<Vec<usize>>,
        var_to_check: Vec<Vec<usize>>,
        construction: Construction,
    ) -> Self {
        let num_edges: usize = check_to_var.iter().map(Vec::len).sum();
        let mut mask_word = Vec::with_capacity(num_edges);
        let mut mask_bits = Vec::with_capacity(num_edges);
        let mut mask_offsets = Vec::with_capacity(m + 1);
        mask_offsets.push(0u32);
        let mut entries: Vec<(u32, u64)> = Vec::new();
        for vars in &check_to_var {
            entries.clear();
            for &v in vars {
                entries.push(((v >> 6) as u32, 1u64 << (v & 63)));
            }
            entries.sort_unstable_by_key(|&(word, _)| word);
            let row_start = mask_word.len();
            for &(word, bit) in &entries {
                if mask_word.len() > row_start && *mask_word.last().expect("non-empty") == word {
                    *mask_bits.last_mut().expect("words and bits move together") ^= bit;
                } else {
                    mask_word.push(word);
                    mask_bits.push(bit);
                }
            }
            mask_offsets.push(mask_word.len() as u32);
        }
        Self {
            n,
            m,
            check_to_var,
            var_to_check,
            construction,
            mask_word,
            mask_bits,
            mask_offsets,
        }
    }

    /// Builds a matrix for the requested design rate using the construction
    /// that suits the block size (quasi-cyclic for large blocks, PEG
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for degenerate rates.
    pub fn for_rate(n: usize, rate: f64, seed: u64) -> Result<Self> {
        if !(0.0 < rate && rate < 1.0) {
            return Err(QkdError::invalid_parameter(
                "rate",
                "must lie strictly in (0, 1)",
            ));
        }
        let m = ((1.0 - rate) * n as f64).round() as usize;
        let m = m.clamp(1, n - 1);
        if n >= 16_384 {
            // Hardware-friendly structured code for large blocks.
            let circulant = 64;
            let n_pad = n - n % circulant;
            let m_pad = (m - m % circulant).max(circulant);
            // Average check degree ~ var_degree / (1 - rate) with var degree 3.
            let base_cols = n_pad / circulant;
            let row_weight = ((3.0 / (1.0 - rate)).round() as usize).clamp(4, base_cols);
            Self::quasi_cyclic(n_pad, m_pad, circulant, row_weight, seed)
        } else {
            Self::peg(n, m, 3, seed)
        }
    }
}

fn validate_dims(n: usize, m: usize) -> Result<()> {
    if n == 0 || m == 0 {
        return Err(QkdError::invalid_parameter(
            "n/m",
            "dimensions must be positive",
        ));
    }
    if m >= n {
        return Err(QkdError::invalid_parameter(
            "m",
            format!("number of checks ({m}) must be below the block length ({n})"),
        ));
    }
    Ok(())
}

fn lowest_degree_check<R: Rng + ?Sized>(
    check_to_var: &[Vec<usize>],
    rng: &mut R,
    exclude: &[usize],
) -> usize {
    let min_deg = check_to_var
        .iter()
        .enumerate()
        .filter(|(c, _)| !exclude.contains(c))
        .map(|(_, v)| v.len())
        .min()
        .unwrap_or(0);
    let candidates: Vec<usize> = check_to_var
        .iter()
        .enumerate()
        .filter(|(c, v)| v.len() == min_deg && !exclude.contains(c))
        .map(|(c, _)| c)
        .collect();
    candidates[rng.gen_range(0..candidates.len())]
}

/// BFS from variable `v` through the current Tanner graph; returns the check
/// to connect next per the PEG rule.
fn farthest_check<R: Rng + ?Sized>(
    check_to_var: &[Vec<usize>],
    var_to_check: &[Vec<usize>],
    v: usize,
    rng: &mut R,
) -> usize {
    let m = check_to_var.len();
    let mut reached = vec![false; m];
    let mut var_seen = vec![false; var_to_check.len()];
    var_seen[v] = true;

    let mut frontier_checks: Vec<usize> = var_to_check[v].clone();
    for &c in &frontier_checks {
        reached[c] = true;
    }
    let mut last_layer = frontier_checks.clone();

    // Expand until no new checks are reached.
    loop {
        let mut next_vars = Vec::new();
        for &c in &frontier_checks {
            for &u in &check_to_var[c] {
                if !var_seen[u] {
                    var_seen[u] = true;
                    next_vars.push(u);
                }
            }
        }
        let mut next_checks = Vec::new();
        for &u in &next_vars {
            for &c in &var_to_check[u] {
                if !reached[c] {
                    reached[c] = true;
                    next_checks.push(c);
                }
            }
        }
        if next_checks.is_empty() {
            break;
        }
        last_layer = next_checks.clone();
        frontier_checks = next_checks;
    }

    let unreachable: Vec<usize> = (0..m).filter(|&c| !reached[c]).collect();
    let pool = if unreachable.is_empty() {
        last_layer
    } else {
        unreachable
    };
    // Lowest degree within the pool, random tie-break.
    let min_deg = pool
        .iter()
        .map(|&c| check_to_var[c].len())
        .min()
        .unwrap_or(0);
    let candidates: Vec<usize> = pool
        .into_iter()
        .filter(|&c| check_to_var[c].len() == min_deg)
        .collect();
    candidates[rng.gen_range(0..candidates.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkd_types::rng::derive_rng;

    #[test]
    fn peg_has_requested_degrees() {
        let h = ParityCheckMatrix::peg(1024, 512, 3, 1).unwrap();
        assert_eq!(h.num_vars(), 1024);
        assert_eq!(h.num_checks(), 512);
        assert_eq!(h.num_edges(), 1024 * 3);
        for v in 0..1024 {
            assert_eq!(h.var_neighbors(v).len(), 3, "variable {v}");
        }
        assert!((h.rate() - 0.5).abs() < 1e-9);
        assert!((h.avg_check_degree() - 6.0).abs() < 0.01);
        assert_eq!(h.construction(), Construction::Peg);
    }

    #[test]
    fn peg_has_no_duplicate_edges() {
        let h = ParityCheckMatrix::peg(512, 256, 3, 2).unwrap();
        for v in 0..512 {
            let mut nb = h.var_neighbors(v).to_vec();
            nb.sort_unstable();
            nb.dedup();
            assert_eq!(
                nb.len(),
                h.var_neighbors(v).len(),
                "variable {v} has a repeated edge"
            );
        }
    }

    #[test]
    fn quasi_cyclic_dimensions_and_structure() {
        let h = ParityCheckMatrix::quasi_cyclic(1024, 256, 64, 8, 3).unwrap();
        assert_eq!(h.num_vars(), 1024);
        assert_eq!(h.num_checks(), 256);
        // Every check row has exactly base_row_weight entries.
        for c in 0..256 {
            assert_eq!(h.check_neighbors(c).len(), 8);
        }
        assert!(matches!(
            h.construction(),
            Construction::QuasiCyclic { circulant: 64 }
        ));
    }

    #[test]
    fn quasi_cyclic_every_variable_is_protected() {
        let h = ParityCheckMatrix::quasi_cyclic(1024, 256, 64, 8, 5).unwrap();
        for v in 0..1024 {
            assert!(!h.var_neighbors(v).is_empty(), "variable {v} has no checks");
        }
    }

    #[test]
    fn syndrome_is_linear() {
        let mut rng = derive_rng(9, "matrix-test");
        let h = ParityCheckMatrix::peg(256, 128, 3, 7).unwrap();
        let a = BitVec::random(&mut rng, 256);
        let b = BitVec::random(&mut rng, 256);
        let sa = h.syndrome(&a);
        let sb = h.syndrome(&b);
        let sum = &a ^ &b;
        assert_eq!(h.syndrome(&sum), &sa ^ &sb);
        assert_eq!(h.syndrome(&BitVec::zeros(256)).count_ones(), 0);
    }

    #[test]
    fn syndrome_matches_helper() {
        let mut rng = derive_rng(10, "matrix-test");
        let h = ParityCheckMatrix::peg(128, 64, 3, 8).unwrap();
        let x = BitVec::random(&mut rng, 128);
        let s = h.syndrome(&x);
        assert!(h.syndrome_matches(&x, &s));
        let mut y = x.clone();
        y.flip(0);
        assert!(!h.syndrome_matches(&y, &s));
    }

    #[test]
    fn packed_syndrome_matches_the_bitwise_reference() {
        let mut rng = derive_rng(17, "matrix-test");
        for h in [
            ParityCheckMatrix::peg(300, 130, 3, 5).unwrap(),
            ParityCheckMatrix::quasi_cyclic(1024, 256, 64, 8, 6).unwrap(),
        ] {
            for _ in 0..8 {
                let x = BitVec::random(&mut rng, h.num_vars());
                assert_eq!(h.syndrome(&x), h.syndrome_reference(&x));
            }
        }
    }

    #[test]
    fn syndrome_into_reuses_the_buffer() {
        let mut rng = derive_rng(18, "matrix-test");
        let small = ParityCheckMatrix::peg(128, 64, 3, 9).unwrap();
        let large = ParityCheckMatrix::peg(512, 256, 3, 9).unwrap();
        let mut out = BitVec::new();
        let x = BitVec::random(&mut rng, 512);
        large.syndrome_into(&x, &mut out);
        assert_eq!(out, large.syndrome_reference(&x));
        // Shrinking reuse must not leak stale bits from the larger syndrome.
        let y = BitVec::random(&mut rng, 128);
        small.syndrome_into(&y, &mut out);
        assert_eq!(out, small.syndrome_reference(&y));
    }

    #[test]
    fn for_rate_picks_construction_by_size() {
        let small = ParityCheckMatrix::for_rate(2048, 0.7, 1).unwrap();
        assert_eq!(small.construction(), Construction::Peg);
        assert!((small.rate() - 0.7).abs() < 0.01);
        let large = ParityCheckMatrix::for_rate(32_768, 0.8, 1).unwrap();
        assert!(matches!(
            large.construction(),
            Construction::QuasiCyclic { .. }
        ));
        assert!((large.rate() - 0.8).abs() < 0.02);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ParityCheckMatrix::peg(0, 0, 3, 1).is_err());
        assert!(ParityCheckMatrix::peg(100, 100, 3, 1).is_err());
        assert!(ParityCheckMatrix::peg(100, 50, 0, 1).is_err());
        assert!(ParityCheckMatrix::peg(100, 50, 51, 1).is_err());
        assert!(ParityCheckMatrix::quasi_cyclic(100, 50, 7, 3, 1).is_err());
        assert!(ParityCheckMatrix::quasi_cyclic(128, 64, 64, 0, 1).is_err());
        assert!(ParityCheckMatrix::for_rate(1000, 0.0, 1).is_err());
        assert!(ParityCheckMatrix::for_rate(1000, 1.0, 1).is_err());
    }

    #[test]
    fn construction_is_deterministic_in_the_seed() {
        let a = ParityCheckMatrix::peg(256, 128, 3, 11).unwrap();
        let b = ParityCheckMatrix::peg(256, 128, 3, 11).unwrap();
        let c = ParityCheckMatrix::peg(256, 128, 3, 12).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
