//! Rate-adaptive LDPC syndrome reconciliation.
//!
//! LDPC coding is the one-way alternative to Cascade and the kernel the paper
//! offloads to accelerators: Alice sends the syndrome of her sifted block
//! under a sparse parity-check matrix, Bob runs belief-propagation syndrome
//! decoding to recover the error pattern, and a single message (plus one
//! verification exchange) reconciles the block regardless of the channel
//! round-trip time.
//!
//! The crate provides:
//!
//! * [`matrix`] — sparse parity-check matrices with progressive-edge-growth
//!   (PEG) and quasi-cyclic constructions;
//! * [`decoder`] — belief-propagation syndrome decoders (sum-product and
//!   normalised min-sum, flooding and layered schedules);
//! * [`reconciler`] — the rate-adaptive reconciliation protocol with a code
//!   library, shortening-based fine rate adaptation and leakage accounting.
//!
//! # Example
//!
//! ```
//! use qkd_ldpc::{LdpcReconciler, ReconcilerConfig};
//! use qkd_types::BitVec;
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let alice = BitVec::random(&mut rng, 4096);
//! let mut bob = alice.clone();
//! for i in 0..4096 {
//!     if rng.gen_bool(0.02) { bob.flip(i); }
//! }
//! let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
//! let outcome = reconciler.reconcile(&alice, &bob, 0.02).unwrap();
//! assert_eq!(outcome.corrected, alice);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decoder;
pub mod matrix;
pub mod reconciler;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use decoder::{
    CheckKernel, DecodeOutcome, DecoderAlgorithm, DecoderConfig, DecoderScratch, Schedule,
    SumProductScratch, SyndromeDecoder,
};
pub use matrix::{Construction, ParityCheckMatrix};
pub use reconciler::{
    CodeLibrary, LdpcOutcome, LdpcReconciler, ReconcilerConfig, ReconcilerScratch,
};
