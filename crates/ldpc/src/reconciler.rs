//! Rate-adaptive LDPC reconciliation protocol.
//!
//! [`LdpcReconciler`] owns a [`CodeLibrary`] of mother codes at several design
//! rates for one block size. For each block it selects the highest-rate code
//! whose redundancy covers the estimated QBER (with a safety margin), runs
//! syndrome decoding, and falls back to progressively lower rates when the
//! decoder fails to converge — the practical equivalent of blind
//! reconciliation, with every disclosed syndrome counted as leakage.

use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use qkd_types::key::binary_entropy;
use qkd_types::rng::derive_block_rng;
use qkd_types::secret::zeroize_words;
use qkd_types::{BitVec, QkdError, Result};

use crate::decoder::{DecoderConfig, DecoderScratch, SyndromeDecoder};
use crate::matrix::ParityCheckMatrix;

/// Default set of mother-code design rates.
///
/// The low-rate tail (0.30/0.40/0.45) exists for stressed links near the
/// abort threshold: at 8% QBER `1 − R` must exceed ~1.35·h(8%) ≈ 0.54, and
/// the 0.30 code keeps decoding feasible up to ~11% — estimates past the
/// sampling bound no longer exhaust the ladder. (It cannot make an 8 kbit
/// stressed block *distillable*: even Shannon-limit reconciliation leaves
/// only ~280 bits there before the finite-key deviation term, so such blocks
/// still fail at privacy amplification, not at decoding.)
///
/// Rates are listed in construction order, not sorted: each code's PEG seed
/// is derived from its position in this array, so new rates are appended to
/// keep every existing code — and thus every distilled key — bit-stable.
pub const DEFAULT_RATES: [f64; 9] = [0.4, 0.45, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.3];

/// A library of mother codes (one per design rate) for a fixed block size,
/// with decoders pre-built for each.
#[derive(Debug, Clone)]
pub struct CodeLibrary {
    block_size: usize,
    entries: Vec<LibraryEntry>,
}

#[derive(Debug, Clone)]
struct LibraryEntry {
    rate: f64,
    matrix: ParityCheckMatrix,
    decoder: SyndromeDecoder,
}

impl CodeLibrary {
    /// Builds a library for `block_size`-bit blocks at the given design rates.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when `block_size` is too small
    /// or a rate is degenerate.
    pub fn new(
        block_size: usize,
        rates: &[f64],
        decoder_config: DecoderConfig,
        seed: u64,
    ) -> Result<Self> {
        if block_size < 64 {
            return Err(QkdError::invalid_parameter(
                "block_size",
                "must be at least 64 bits",
            ));
        }
        if rates.is_empty() {
            return Err(QkdError::invalid_parameter(
                "rates",
                "at least one design rate is required",
            ));
        }
        let mut entries = Vec::with_capacity(rates.len());
        for (i, &rate) in rates.iter().enumerate() {
            let matrix =
                ParityCheckMatrix::for_rate(block_size, rate, seed.wrapping_add(i as u64))?;
            let decoder = SyndromeDecoder::new(&matrix, decoder_config)?;
            entries.push(LibraryEntry {
                rate,
                matrix,
                decoder,
            });
        }
        // Sort descending by rate so "highest feasible rate" is a linear scan.
        entries.sort_by(|a, b| b.rate.partial_cmp(&a.rate).expect("rates are finite"));
        Ok(Self {
            block_size,
            entries,
        })
    }

    /// Builds the default library (rates 0.3–0.85) for `block_size`.
    ///
    /// # Errors
    ///
    /// See [`CodeLibrary::new`].
    pub fn standard(block_size: usize, seed: u64) -> Result<Self> {
        Self::new(block_size, &DEFAULT_RATES, DecoderConfig::default(), seed)
    }

    /// The block size the library was built for.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Available design rates, highest first.
    pub fn rates(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.rate).collect()
    }

    /// Returns the process-wide shared library for this exact configuration,
    /// building it on first use.
    ///
    /// Code construction is expensive — PEG is quadratic in the block length,
    /// and a default ladder is eight codes — while the result is a pure
    /// function of `(block_size, rates, decoder_config, seed)`. Every
    /// [`crate::LdpcReconciler`] with the same configuration (e.g. a fleet of
    /// engines at one block size) therefore shares one immutable library
    /// instead of rebuilding it per engine.
    ///
    /// # Errors
    ///
    /// See [`CodeLibrary::new`].
    pub fn shared(
        block_size: usize,
        rates: &[f64],
        decoder_config: DecoderConfig,
        seed: u64,
    ) -> Result<Arc<Self>> {
        struct CacheEntry {
            block_size: usize,
            rates: Vec<f64>,
            decoder: DecoderConfig,
            seed: u64,
            library: Arc<CodeLibrary>,
        }
        /// The cache is a bounded LRU so a long-lived process that cycles
        /// through many distinct configurations (per-link seeds, block-size
        /// sweeps) cannot grow memory without bound; engines holding an `Arc`
        /// keep their library alive past eviction.
        const MAX_CACHED: usize = 8;
        static CACHE: OnceLock<Mutex<Vec<CacheEntry>>> = OnceLock::new();
        // The lock is held across construction on purpose: concurrent callers
        // asking for the same library wait for one build instead of racing
        // through several.
        let mut cache = CACHE
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .expect("code library cache poisoned");
        if let Some(position) = cache.iter().position(|e| {
            e.block_size == block_size
                && e.rates == rates
                && e.decoder == decoder_config
                && e.seed == seed
        }) {
            // Move the hit to the back (most recently used).
            let entry = cache.remove(position);
            let library = Arc::clone(&entry.library);
            cache.push(entry);
            return Ok(library);
        }
        let library = Arc::new(Self::new(block_size, rates, decoder_config, seed)?);
        if cache.len() >= MAX_CACHED {
            cache.remove(0);
        }
        cache.push(CacheEntry {
            block_size,
            rates: rates.to_vec(),
            decoder: decoder_config,
            seed,
            library: Arc::clone(&library),
        });
        Ok(library)
    }

    /// Index of the highest-rate code whose redundancy is at least
    /// `efficiency * h(qber)` per codeword bit, or the lowest-rate code if
    /// none qualifies. Equivalent to
    /// [`CodeLibrary::select_for_payload`] with a full-length payload.
    pub fn select(&self, qber: f64, efficiency: f64) -> usize {
        self.select_for_payload(self.block_size, qber, efficiency)
    }

    /// Shortening-aware rate selection: the index of the highest-rate code
    /// whose syndrome discloses at least `efficiency * h(qber)` bits per
    /// *payload* bit, or the lowest-rate code if none qualifies.
    ///
    /// A shortened block fills `n - payload_bits` positions with agreed
    /// filler, so the `m = (1 - R) · n` syndrome bits only have to cover
    /// `payload_bits` unknowns: the requirement is
    /// `(1 - R) ≥ efficiency · h(q) · payload / n`. Charging the leak over
    /// the code length instead (the old behaviour) overcharged shortened
    /// payloads by `n / payload` (~18% for a typical final partial block) and
    /// pushed them one rung too far down the ladder.
    pub fn select_for_payload(&self, payload_bits: usize, qber: f64, efficiency: f64) -> usize {
        let payload = payload_bits.clamp(1, self.block_size) as f64;
        let needed = efficiency * binary_entropy(qber.max(1e-4)) * payload / self.block_size as f64;
        self.entries
            .iter()
            .position(|e| (1.0 - e.rate) >= needed)
            .unwrap_or(self.entries.len() - 1)
    }
}

/// Configuration of the LDPC reconciler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconcilerConfig {
    /// Block size (codeword length) in bits.
    pub block_size: usize,
    /// Design rates of the mother codes.
    pub rates: Vec<f64>,
    /// Efficiency margin used for rate selection (`1.0` = Shannon limit;
    /// practical values 1.1–1.3).
    pub efficiency_target: f64,
    /// Decoder settings shared by all codes in the library.
    pub decoder: DecoderConfig,
    /// Maximum number of progressively lower-rate attempts per block.
    pub max_rate_retries: usize,
    /// Seed for code construction and shortening-position agreement.
    pub seed: u64,
}

impl ReconcilerConfig {
    /// Sensible defaults for the given block size.
    pub fn for_block_size(block_size: usize) -> Self {
        Self {
            block_size,
            rates: DEFAULT_RATES.to_vec(),
            efficiency_target: 1.35,
            decoder: DecoderConfig::default(),
            max_rate_retries: 3,
            seed: 0xC0DE,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] for degenerate fields.
    pub fn validate(&self) -> Result<()> {
        if self.block_size < 64 {
            return Err(QkdError::invalid_parameter(
                "block_size",
                "must be at least 64 bits",
            ));
        }
        if self.efficiency_target < 1.0 {
            return Err(QkdError::invalid_parameter(
                "efficiency_target",
                "cannot beat the Shannon limit (must be >= 1.0)",
            ));
        }
        if self.max_rate_retries == 0 {
            return Err(QkdError::invalid_parameter(
                "max_rate_retries",
                "must be at least 1",
            ));
        }
        self.decoder.validate()
    }
}

/// Result of reconciling one block with LDPC syndrome coding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdpcOutcome {
    /// Bob's corrected key (equal to Alice's on success).
    pub corrected: BitVec,
    /// Total syndrome bits disclosed across all attempts.
    pub leaked_bits: usize,
    /// Errors corrected in the block.
    pub corrected_errors: usize,
    /// Decoder iterations used by the successful attempt.
    pub iterations: usize,
    /// Design rate of the code that succeeded.
    pub rate_used: f64,
    /// Number of decode attempts (1 = first-choice rate succeeded).
    pub attempts: usize,
    /// One-way messages exchanged (one syndrome per attempt).
    pub messages: usize,
}

impl LdpcOutcome {
    /// Reconciliation efficiency `f = leak / (n · h(qber))` from the corrected
    /// error count.
    pub fn efficiency(&self, n: usize) -> Option<f64> {
        if n == 0 || self.corrected_errors == 0 {
            return None;
        }
        let qber = self.corrected_errors as f64 / n as f64;
        let h = binary_entropy(qber);
        if h <= 0.0 {
            None
        } else {
            Some(self.leaked_bits as f64 / (n as f64 * h))
        }
    }
}

/// Reusable working memory for [`LdpcReconciler::reconcile_with_scratch`]:
/// the decoder arena plus the codeword, syndrome and override buffers the
/// protocol itself needs.
///
/// One scratch serves every attempt of a rate ladder, every block of a
/// session, and reconcilers of different block sizes (buffers only ever
/// grow). Holding one scratch per worker thread removes all per-block setup
/// allocation from the reconciliation hot path.
#[derive(Clone, Default)]
pub struct ReconcilerScratch {
    decoder: DecoderScratch,
    overrides: Vec<(usize, f64)>,
    alice_word: BitVec,
    bob_word: BitVec,
    corrected_word: BitVec,
    syndrome_a: BitVec,
    syndrome_check: BitVec,
    target: BitVec,
}

impl ReconcilerScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn zeroize(&mut self) {
        self.decoder.zeroize();
        for (index, llr) in self.overrides.iter_mut() {
            *index = 0;
            *llr = 0.0;
        }
        for bits in [
            &mut self.alice_word,
            &mut self.bob_word,
            &mut self.corrected_word,
            &mut self.syndrome_a,
            &mut self.syndrome_check,
            &mut self.target,
        ] {
            zeroize_words(bits.as_words_mut());
        }
    }
}

impl std::fmt::Debug for ReconcilerScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The scratch is full of key-derived state (words, syndromes, LLRs);
        // print only capacities.
        f.debug_struct("ReconcilerScratch")
            .field("word_bits", &self.alice_word.len())
            .field("syndrome_bits", &self.syndrome_a.len())
            .finish_non_exhaustive()
    }
}

impl Drop for ReconcilerScratch {
    /// Reconciliation scratch holds raw key words and key-derived soft
    /// information between blocks; scrub it before the allocator reuses the
    /// memory.
    fn drop(&mut self) {
        self.zeroize();
    }
}

/// Rate-adaptive LDPC reconciler for fixed-size blocks.
///
/// The code library is shared process-wide between reconcilers with equal
/// configurations (see [`CodeLibrary::shared`]): constructing a second engine
/// at the same block size is cheap, which is what makes multi-link fleets
/// affordable.
///
/// Hot paths should pass their own long-lived [`ReconcilerScratch`] to
/// [`LdpcReconciler::reconcile_with_scratch`]; the plain
/// [`LdpcReconciler::reconcile`] keeps one scratch per reconciler for
/// convenience callers.
#[derive(Debug)]
pub struct LdpcReconciler {
    config: ReconcilerConfig,
    library: Arc<CodeLibrary>,
    /// Per-reconciler scratch for [`LdpcReconciler::reconcile`]. Guarded so
    /// `reconcile` stays callable through a shared reference; a contended
    /// call falls back to a fresh scratch instead of serialising decoders.
    scratch: Mutex<ReconcilerScratch>,
    /// Rate-ladder attempts per reconciled block (`qkd_ldpc_ladder_attempts`).
    obs_attempts: qkd_obs::Histogram,
    /// Syndrome bits disclosed (`qkd_ldpc_syndrome_leaked_bits_total`).
    obs_leaked: qkd_obs::Counter,
    /// Blocks no code in the ladder converged on
    /// (`qkd_ldpc_reconcile_failures_total`).
    obs_failures: qkd_obs::Counter,
}

impl Clone for LdpcReconciler {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            library: Arc::clone(&self.library),
            scratch: Mutex::new(ReconcilerScratch::new()),
            obs_attempts: self.obs_attempts.clone(),
            obs_leaked: self.obs_leaked.clone(),
            obs_failures: self.obs_failures.clone(),
        }
    }
}

impl LdpcReconciler {
    /// Builds a reconciler from a configuration, sharing the code library
    /// with any other reconciler of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QkdError::InvalidParameter`] when the configuration is
    /// invalid or code construction fails.
    pub fn new(config: ReconcilerConfig) -> Result<Self> {
        config.validate()?;
        let library = CodeLibrary::shared(
            config.block_size,
            &config.rates,
            config.decoder,
            config.seed,
        )?;
        let obs = qkd_obs::registry();
        Ok(Self {
            config,
            library,
            scratch: Mutex::new(ReconcilerScratch::new()),
            obs_attempts: obs.histogram_with(
                "qkd_ldpc_ladder_attempts",
                &[],
                &qkd_obs::COUNT_BUCKETS,
            ),
            obs_leaked: obs.counter("qkd_ldpc_syndrome_leaked_bits_total", &[]),
            obs_failures: obs.counter("qkd_ldpc_reconcile_failures_total", &[]),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReconcilerConfig {
        &self.config
    }

    /// The code library in use.
    pub fn library(&self) -> &CodeLibrary {
        self.library.as_ref()
    }

    /// Block size expected by [`LdpcReconciler::reconcile`].
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    /// Reconciles `bob` against `alice` (both exactly `block_size` bits, or
    /// shorter — shorter blocks are handled by shortening the code), reusing
    /// the reconciler's own scratch.
    ///
    /// # Errors
    ///
    /// See [`LdpcReconciler::reconcile_with_scratch`].
    pub fn reconcile(
        &self,
        alice: &BitVec,
        bob: &BitVec,
        estimated_qber: f64,
    ) -> Result<LdpcOutcome> {
        match self.scratch.try_lock() {
            Ok(mut scratch) => {
                self.reconcile_with_scratch(alice, bob, estimated_qber, &mut scratch)
            }
            // A panic while the scratch was held only interrupted plain
            // buffer reuse — the buffers are still valid to reuse, so
            // recover them instead of silently allocating forever after.
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                let mut scratch = poisoned.into_inner();
                self.reconcile_with_scratch(alice, bob, estimated_qber, &mut scratch)
            }
            // Another thread is reconciling through this same instance; a
            // fresh scratch costs one block's setup, not a serialised decode.
            Err(std::sync::TryLockError::WouldBlock) => self.reconcile_with_scratch(
                alice,
                bob,
                estimated_qber,
                &mut ReconcilerScratch::new(),
            ),
        }
    }

    /// Reconciles like [`LdpcReconciler::reconcile`], drawing every working
    /// buffer — decoder arena, padded codewords, syndromes, LLR overrides —
    /// from a caller-owned scratch that is reused across the attempts of the
    /// rate ladder (and, across calls, over blocks and block sizes).
    ///
    /// # Errors
    ///
    /// * [`QkdError::DimensionMismatch`] when the keys differ in length or
    ///   exceed the block size.
    /// * [`QkdError::InvalidParameter`] when `estimated_qber` is outside
    ///   `(0, 0.5)`.
    /// * [`QkdError::ReconciliationFailed`] when no code in the library
    ///   converges within the retry budget.
    pub fn reconcile_with_scratch(
        &self,
        alice: &BitVec,
        bob: &BitVec,
        estimated_qber: f64,
        scratch: &mut ReconcilerScratch,
    ) -> Result<LdpcOutcome> {
        if alice.len() != bob.len() {
            return Err(QkdError::DimensionMismatch {
                context: "ldpc reconciliation",
                expected: alice.len(),
                actual: bob.len(),
            });
        }
        if alice.len() > self.config.block_size || alice.is_empty() {
            return Err(QkdError::DimensionMismatch {
                context: "ldpc block size",
                expected: self.config.block_size,
                actual: alice.len(),
            });
        }
        if !(0.0 < estimated_qber && estimated_qber < 0.5) {
            return Err(QkdError::invalid_parameter(
                "estimated_qber",
                "must lie strictly in (0, 0.5)",
            ));
        }

        let n = self.config.block_size;
        let payload = alice.len();
        let shortened = n - payload;

        let ReconcilerScratch {
            decoder: decoder_scratch,
            overrides,
            alice_word,
            bob_word,
            corrected_word,
            syndrome_a,
            syndrome_check,
            target,
        } = scratch;

        // Both parties pad their key to the codeword length with agreed
        // pseudo-random filler derived from the shared seed and block length
        // (filler positions are the tail; values are public knowledge).
        overrides.clear();
        alice_word.truncate(0);
        alice_word.extend_from(alice);
        bob_word.truncate(0);
        bob_word.extend_from(bob);
        if shortened > 0 {
            let mut rng = derive_block_rng(self.config.seed, "ldpc-shortening", payload as u64);
            let filler = BitVec::random(&mut rng, shortened);
            alice_word.extend_from(&filler);
            bob_word.extend_from(&filler);
            // Shortened positions get a strong known-value prior. The prior
            // sign encodes the known filler bit: positive LLR means "no error",
            // and since both parties share the filler there is never an error
            // at a shortened position.
            overrides.extend((payload..n).map(|v| (v, 30.0)));
        }

        // Shortening-aware selection: charge the syndrome leak against the
        // payload actually being reconciled, not the padded codeword.
        let start =
            self.library
                .select_for_payload(payload, estimated_qber, self.config.efficiency_target);
        let mut leaked = 0usize;
        let mut attempts = 0usize;
        let max_attempts = self.config.max_rate_retries;

        for entry in self.library.entries.iter().skip(start) {
            if attempts >= max_attempts {
                break;
            }
            attempts += 1;
            entry.matrix.syndrome_into(alice_word, syndrome_a);
            entry.matrix.syndrome_into(bob_word, target);
            target.xor_assign(syndrome_a);
            leaked += entry.matrix.num_checks();
            let decode = entry.decoder.decode_with_scratch(
                target,
                estimated_qber,
                overrides,
                decoder_scratch,
            )?;
            if !decode.converged {
                continue;
            }
            corrected_word.truncate(0);
            corrected_word.extend_from(bob_word);
            corrected_word.xor_assign(&decode.error_pattern);
            // Sanity: syndrome now matches Alice's.
            entry.matrix.syndrome_into(corrected_word, syndrome_check);
            if syndrome_check != syndrome_a {
                continue;
            }
            let corrected = corrected_word.slice(0, payload);
            let corrected_errors = corrected.hamming_distance(bob);
            self.obs_attempts.observe(attempts as f64);
            self.obs_leaked.add(leaked as u64);
            return Ok(LdpcOutcome {
                corrected,
                leaked_bits: leaked,
                corrected_errors,
                iterations: decode.iterations,
                rate_used: entry.rate,
                attempts,
                messages: attempts,
            });
        }

        // Failed ladders still disclosed their syndromes; account the leak
        // and the attempts before reporting the failure.
        self.obs_attempts.observe(attempts as f64);
        self.obs_leaked.add(leaked as u64);
        self.obs_failures.inc();
        Err(QkdError::ReconciliationFailed {
            block: 0,
            iterations: attempts,
            residual_errors: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkd_types::rng::derive_rng;
    use rand::Rng;

    #[test]
    fn equal_configs_share_one_code_library() {
        let a = LdpcReconciler::new(ReconcilerConfig::for_block_size(1024)).unwrap();
        let b = LdpcReconciler::new(ReconcilerConfig::for_block_size(1024)).unwrap();
        assert!(
            Arc::ptr_eq(&a.library, &b.library),
            "identical configs must reuse the cached library"
        );
        // A different seed is a different library (never silently shared).
        let mut other = ReconcilerConfig::for_block_size(1024);
        other.seed ^= 1;
        let c = LdpcReconciler::new(other).unwrap();
        assert!(!Arc::ptr_eq(&a.library, &c.library));
        assert_eq!(a.library.rates(), c.library.rates());
    }

    fn correlated(n: usize, qber: f64, seed: u64) -> (BitVec, BitVec, usize) {
        let mut rng = derive_rng(seed, "ldpc-recon-test");
        let alice = BitVec::random(&mut rng, n);
        let mut bob = alice.clone();
        let mut errs = 0;
        for i in 0..n {
            if rng.gen_bool(qber) {
                bob.flip(i);
                errs += 1;
            }
        }
        (alice, bob, errs)
    }

    #[test]
    fn library_selects_higher_rates_for_lower_qber() {
        let lib = CodeLibrary::standard(2048, 1).unwrap();
        let low = lib.select(0.01, 1.2);
        let high = lib.select(0.08, 1.2);
        let rates = lib.rates();
        assert!(
            rates[low] > rates[high],
            "low QBER should map to a higher rate"
        );
        assert_eq!(lib.block_size(), 2048);
    }

    #[test]
    fn reconciles_typical_qber_range() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
        for &qber in &[0.01, 0.03, 0.05] {
            let (alice, bob, errs) = correlated(4096, qber, 100 + (qber * 1000.0) as u64);
            let out = reconciler.reconcile(&alice, &bob, qber).unwrap();
            assert_eq!(out.corrected, alice, "qber {qber}");
            assert_eq!(out.corrected_errors, errs);
            assert!(out.rate_used >= 0.5);
        }
    }

    #[test]
    fn leakage_and_efficiency_are_sane() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
        let (alice, bob, _) = correlated(4096, 0.03, 7);
        let out = reconciler.reconcile(&alice, &bob, 0.03).unwrap();
        let f = out.efficiency(4096).unwrap();
        assert!(f >= 1.0, "cannot beat Shannon, f = {f}");
        assert!(f < 2.0, "efficiency should stay moderate, f = {f}");
        assert_eq!(out.messages, out.attempts);
    }

    #[test]
    fn handles_short_final_block_by_shortening() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
        let (alice, bob, _) = correlated(3000, 0.02, 9);
        let out = reconciler.reconcile(&alice, &bob, 0.02).unwrap();
        assert_eq!(out.corrected, alice);
        assert_eq!(out.corrected.len(), 3000);
    }

    #[test]
    fn shortened_payloads_select_a_higher_first_attempt_rate() {
        let lib = CodeLibrary::standard(4096, 1).unwrap();
        let rates = lib.rates();
        // At 5% QBER a full 4096-bit block needs 1 − R ≥ 1.35·h(5%) ≈ 0.387
        // (rate 0.6), but a 3000-bit shortened payload only leaks per payload
        // bit: 0.387 · 3000/4096 ≈ 0.284 clears the rate-0.7 code.
        let full = lib.select(0.05, 1.35);
        let short = lib.select_for_payload(3000, 0.05, 1.35);
        assert!(
            rates[short] > rates[full],
            "shortened payload must pick a higher rate: {} vs {}",
            rates[short],
            rates[full]
        );
        assert!((rates[full] - 0.6).abs() < 1e-12);
        assert!((rates[short] - 0.7).abs() < 1e-12);
        // Full-length selection is unchanged by the payload-aware form.
        assert_eq!(full, lib.select_for_payload(4096, 0.05, 1.35));
        // A shortened block reconciles end-to-end at the higher rate and
        // leaks less than the full-block selection would have.
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
        let (alice, bob, _) = correlated(3000, 0.05, 77);
        let out = reconciler.reconcile(&alice, &bob, 0.05).unwrap();
        assert_eq!(out.corrected, alice);
        assert!(
            out.rate_used >= rates[short] - 1e-12,
            "first attempt should start at the payload-aware rate, used {}",
            out.rate_used
        );
    }

    #[test]
    fn caller_scratch_and_internal_scratch_agree() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(2048)).unwrap();
        let mut scratch = ReconcilerScratch::new();
        // Mixed payload sizes through one scratch, compared against the
        // internal-scratch entry point.
        for &(len, qber, seed) in &[(2048usize, 0.03, 51u64), (1500, 0.02, 52), (2048, 0.05, 53)] {
            let (alice, bob, _) = correlated(len, qber, seed);
            let with_scratch = reconciler
                .reconcile_with_scratch(&alice, &bob, qber, &mut scratch)
                .unwrap();
            let plain = reconciler.reconcile(&alice, &bob, qber).unwrap();
            assert_eq!(with_scratch, plain, "len {len} qber {qber}");
        }
    }

    #[test]
    fn underestimated_qber_falls_back_to_lower_rate_or_fails_cleanly() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(2048)).unwrap();
        // True error rate 8%, but the caller claims 2%: the first-choice high
        // rate cannot converge, so either a retry at a lower rate succeeds or
        // the reconciler reports failure — it must never return a wrong key
        // labelled as success.
        let (alice, bob, _) = correlated(2048, 0.08, 11);
        match reconciler.reconcile(&alice, &bob, 0.02) {
            Ok(out) => {
                assert_eq!(out.corrected, alice);
                assert!(out.attempts >= 1);
            }
            Err(QkdError::ReconciliationFailed { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn low_rate_tail_reconciles_where_the_old_ladder_bottomed_out() {
        // 12% QBER at 4 kbit sits past the rate-0.40 code's BP threshold —
        // the pre-extension ladder (which bottomed out at 0.40) exhausted its
        // retries on such blocks. The appended 0.30 mother code converges.
        let (alice, bob, _) = correlated(4096, 0.12, 41);
        let mut old_tail = ReconcilerConfig::for_block_size(4096);
        old_tail.rates = vec![0.4];
        let old = LdpcReconciler::new(old_tail).unwrap();
        assert!(matches!(
            old.reconcile(&alice, &bob, 0.12),
            Err(QkdError::ReconciliationFailed { .. })
        ));

        let new = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
        let out = new.reconcile(&alice, &bob, 0.12).unwrap();
        assert_eq!(out.corrected, alice);
        assert!(out.rate_used <= 0.3 + 1e-12, "got rate {}", out.rate_used);

        // The selector reaches the new tail directly for stressed-link
        // estimates (~9.5% after the sampling bound), without burning a
        // doomed higher-rate attempt first.
        let lib = new.library();
        let rates = lib.rates();
        assert!((rates[rates.len() - 1] - 0.3).abs() < 1e-12);
        assert!((rates[lib.select(0.0955, 1.35)] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dimension_errors() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(1024)).unwrap();
        let a = BitVec::zeros(1024);
        let b = BitVec::zeros(1000);
        assert!(matches!(
            reconciler.reconcile(&a, &b, 0.02),
            Err(QkdError::DimensionMismatch { .. })
        ));
        let a = BitVec::zeros(2048);
        let b = BitVec::zeros(2048);
        assert!(matches!(
            reconciler.reconcile(&a, &b, 0.02),
            Err(QkdError::DimensionMismatch { .. })
        ));
        let a = BitVec::zeros(1024);
        let b = BitVec::zeros(1024);
        assert!(reconciler.reconcile(&a, &b, 0.0).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ReconcilerConfig::for_block_size(1024);
        cfg.efficiency_target = 0.9;
        assert!(LdpcReconciler::new(cfg).is_err());
        let mut cfg = ReconcilerConfig::for_block_size(1024);
        cfg.block_size = 32;
        assert!(LdpcReconciler::new(cfg).is_err());
        let mut cfg = ReconcilerConfig::for_block_size(1024);
        cfg.max_rate_retries = 0;
        assert!(LdpcReconciler::new(cfg).is_err());
        assert!(CodeLibrary::new(1024, &[], DecoderConfig::default(), 1).is_err());
    }

    #[test]
    fn higher_qber_uses_lower_rate_and_leaks_more() {
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(4096)).unwrap();
        let (a1, b1, _) = correlated(4096, 0.01, 21);
        let (a2, b2, _) = correlated(4096, 0.06, 22);
        let low = reconciler.reconcile(&a1, &b1, 0.01).unwrap();
        let high = reconciler.reconcile(&a2, &b2, 0.06).unwrap();
        assert!(low.rate_used > high.rate_used);
        assert!(low.leaked_bits < high.leaked_bits);
    }
}
