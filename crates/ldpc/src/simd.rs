//! AVX2 lane-per-check kernels for the min-sum layered and flooding sweeps.
//!
//! The layered schedule is sequential by definition — check `c + 1` must see
//! the posterior updates of check `c` when they share a variable. The
//! construction pass therefore groups *consecutive, pairwise
//! variable-disjoint, equal-degree* checks into quads: within a quad the
//! sequential semantics are unobservable, so the four checks can ride one
//! AVX2 lane each, every lane executing exactly the scalar per-check
//! instruction sequence (same clamps, same two-minimum scan, same sign
//! parity, same rounding). Results are bit-identical to the scalar sweep —
//! and hence to the retained reference decoder — on every machine; hosts
//! without AVX2 simply run the scalar sweep.
//!
//! The flooding schedule is easier: every check update within a sweep reads
//! the variable-to-check messages and writes only its own check-to-variable
//! slots, so checks are independent by construction and quads need only be
//! consecutive and equal-degree (no disjointness scan). The flooding quad
//! kernel mirrors the fused scalar sweep's arithmetic operation-for-operation
//! and is likewise bit-identical.
//!
//! Safety: the only unsafe operations are AVX2 intrinsics on indices the
//! decoder constructed and bounds-validated itself (every `edge_var` entry is
//! `< n`, every edge offset `< num_edges`). `unsafe_op_in_unsafe_fn` is
//! denied so each memory-touching operation carries its own `// SAFETY:`
//! justification — register-only intrinsics are safe here because the
//! enclosing function enables the `avx2` target feature.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

/// Flag marking a schedule entry as a quad start (the entry's low bits are
/// the first of four consecutive checks).
pub(crate) const QUAD: u32 = 0x8000_0000;

/// Maximum check degree a quad may have (bounds the in-register value
/// stash).
pub(crate) const MAX_QUAD_DEGREE: usize = 16;

/// Builds the quad schedule: entries are either `c | QUAD` (checks
/// `c..c + 4` share one degree and, when `require_disjoint` is set, are
/// pairwise variable-disjoint) or a bare check index processed scalar.
/// `stamp` is an `n`-sized scratch the caller provides. Layered sweeps need
/// the disjointness scan (quad lanes must not observe each other's posterior
/// writes); flooding sweeps pass `false` because their check updates are
/// independent within a sweep.
pub(crate) fn build_schedule(
    m: usize,
    check_offsets: &[u32],
    edge_var: &[u32],
    stamp: &mut [u32],
    require_disjoint: bool,
) -> Vec<u32> {
    let mut sched = Vec::with_capacity(m);
    let mut generation = 0u32;
    let mut c = 0usize;
    while c < m {
        let mut quad_ok = c + 4 <= m;
        if quad_ok {
            let deg = (check_offsets[c + 1] - check_offsets[c]) as usize;
            quad_ok = (2..=MAX_QUAD_DEGREE).contains(&deg);
            if quad_ok {
                generation += 1;
                'quad: for q in c..c + 4 {
                    let (s, e) = (check_offsets[q] as usize, check_offsets[q + 1] as usize);
                    if e - s != deg {
                        quad_ok = false;
                        break 'quad;
                    }
                    if !require_disjoint {
                        continue;
                    }
                    for &v in &edge_var[s..e] {
                        if stamp[v as usize] == generation {
                            quad_ok = false;
                            break 'quad;
                        }
                        stamp[v as usize] = generation;
                    }
                }
            }
        }
        if quad_ok {
            sched.push(c as u32 | QUAD);
            c += 4;
        } else {
            sched.push(c as u32);
            c += 1;
        }
    }
    sched
}

/// Lane-per-check min-sum layered update of one quad (checks `c..c + 4`,
/// all of degree `deg`, pairwise variable-disjoint).
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `deg <= MAX_QUAD_DEGREE`, the four
/// checks' edge ranges lie inside `c2v`/`edge_var`, and every variable index
/// lies inside `posterior`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn min_sum_layered_quad(
    c: usize,
    deg: usize,
    check_offsets: &[u32],
    edge_var: &[u32],
    target_words: &[u64],
    scale: f64,
    clamp: f64,
    c2v: &mut [f64],
    posterior: &mut [f64],
) {
    let sign_mask = _mm256_set1_pd(f64::from_bits(1u64 << 63));
    let clamp_lo = _mm256_set1_pd(-clamp);
    let clamp_hi = _mm256_set1_pd(clamp);
    let zero = _mm256_setzero_pd();

    // Edge starts of the four checks.
    let starts = _mm_set_epi32(
        check_offsets[c + 3] as i32,
        check_offsets[c + 2] as i32,
        check_offsets[c + 1] as i32,
        check_offsets[c] as i32,
    );

    let mut vals = [_mm256_setzero_pd(); MAX_QUAD_DEGREE];
    let mut vidx = [_mm_setzero_si128(); MAX_QUAD_DEGREE];
    let mut min1 = _mm256_set1_pd(f64::INFINITY);
    let mut min2 = _mm256_set1_pd(f64::INFINITY);
    let mut min1_idx = _mm256_setzero_si256();
    let mut neg = _mm256_setzero_pd();

    // Pass 1 — extrinsic inputs and the two-minimum/sign scan, lanewise.
    for (k, (val_k, vidx_k)) in vals[..deg]
        .iter_mut()
        .zip(vidx[..deg].iter_mut())
        .enumerate()
    {
        let edge_k = _mm_add_epi32(starts, _mm_set1_epi32(k as i32));
        // Variable indices of edge k in each lane's check.
        // SAFETY: each lane of `edge_k` is `check_offsets[c+q] + k` with
        // `k < deg`, so all four 4-byte gather offsets land inside
        // `edge_var` (the caller guarantees the quad's edge ranges are
        // in-bounds); `u32` entries are read as `i32` of identical width.
        let vars = unsafe { _mm_i32gather_epi32(edge_var.as_ptr().cast::<i32>(), edge_k, 4) };
        *vidx_k = vars;
        // SAFETY: every `edge_var` entry is a variable index `< n ==
        // posterior.len()` (validated at graph construction), so the four
        // 8-byte lanes gather initialized `f64`s inside `posterior`.
        let p = unsafe { _mm256_i32gather_pd(posterior.as_ptr(), vars, 8) };
        // SAFETY: `edge_k` lanes are edge indices `< num_edges <=
        // c2v.len()` (same in-bounds argument as the `edge_var` gather).
        let msg = unsafe { _mm256_i32gather_pd(c2v.as_ptr(), edge_k, 8) };
        let val = _mm256_min_pd(_mm256_max_pd(_mm256_sub_pd(p, msg), clamp_lo), clamp_hi);
        *val_k = val;
        let a = _mm256_andnot_pd(sign_mask, val);
        // Lanewise two-minimum update, mirroring the scalar selects exactly.
        let lt1 = _mm256_cmp_pd(a, min1, _CMP_LT_OQ);
        let runner_up = _mm256_blendv_pd(a, min1, lt1);
        let lt2 = _mm256_cmp_pd(runner_up, min2, _CMP_LT_OQ);
        min2 = _mm256_blendv_pd(min2, runner_up, lt2);
        min1 = _mm256_blendv_pd(min1, a, lt1);
        let k_vec = _mm256_set1_epi64x(k as i64);
        min1_idx = _mm256_blendv_epi8(min1_idx, k_vec, _mm256_castpd_si256(lt1));
        neg = _mm256_xor_pd(neg, _mm256_cmp_pd(val, zero, _CMP_LT_OQ));
    }

    // Per-lane signed scale: ±scale from the target syndrome bit, sign-
    // flipped by the lane's accumulated parity.
    let base = |q: usize| -> f64 {
        let bit = (target_words[(c + q) >> 6] >> ((c + q) & 63)) & 1;
        if bit == 1 {
            -scale
        } else {
            scale
        }
    };
    let base_v = _mm256_set_pd(base(3), base(2), base(1), base(0));
    let signed_scale = _mm256_xor_pd(base_v, _mm256_and_pd(neg, sign_mask));
    // Degree >= 2 in every quad, so both minima are finite.
    let mag1 = _mm256_mul_pd(signed_scale, min1);
    let mag2 = _mm256_mul_pd(signed_scale, min2);

    // Pass 2 — outgoing messages and posterior updates.
    let mut starts_arr = [0i32; 4];
    // SAFETY: `starts_arr` is a stack array of exactly four `i32`s (16
    // bytes), matching the 128-bit store; `storeu` has no alignment
    // requirement.
    unsafe { _mm_storeu_si128(starts_arr.as_mut_ptr().cast::<__m128i>(), starts) };
    for (k, (&val, &vars)) in vals[..deg].iter().zip(vidx[..deg].iter()).enumerate() {
        let is_min = _mm256_cmpeq_epi64(min1_idx, _mm256_set1_epi64x(k as i64));
        let mag = _mm256_blendv_pd(mag1, mag2, _mm256_castsi256_pd(is_min));
        let out = _mm256_xor_pd(
            mag,
            _mm256_and_pd(_mm256_cmp_pd(val, zero, _CMP_LT_OQ), sign_mask),
        );
        let post = _mm256_min_pd(_mm256_max_pd(_mm256_add_pd(val, out), clamp_lo), clamp_hi);
        // Scatter (AVX2 has gathers only): extract lanes to the four checks'
        // message slots and posterior entries.
        let mut out_arr = [0.0f64; 4];
        let mut post_arr = [0.0f64; 4];
        let mut var_arr = [0i32; 4];
        // SAFETY: the destinations are stack arrays whose sizes match the
        // stored vectors exactly — 4 × f64 (32 bytes) for the 256-bit
        // stores, 4 × i32 (16 bytes) for the 128-bit store — and the
        // unaligned-store intrinsics have no alignment requirement.
        unsafe {
            _mm256_storeu_pd(out_arr.as_mut_ptr(), out);
            _mm256_storeu_pd(post_arr.as_mut_ptr(), post);
            _mm_storeu_si128(var_arr.as_mut_ptr().cast::<__m128i>(), vars);
        }
        for q in 0..4 {
            // SAFETY: `starts_arr[q] + k` is an edge index of check `c+q`
            // with `k < deg`, in-bounds for `c2v`; `var_arr[q]` came from
            // `edge_var`, whose entries are `< n == posterior.len()`. The
            // quad is pairwise variable-disjoint, so the four lanes write
            // four distinct posterior slots.
            unsafe {
                *c2v.get_unchecked_mut(starts_arr[q] as usize + k) = out_arr[q];
                *posterior.get_unchecked_mut(var_arr[q] as usize) = post_arr[q];
            }
        }
    }
}

/// Lane-per-check min-sum flooding update of one quad (checks `c..c + 4`,
/// all of degree `deg`). Reads the variable-to-check messages, writes the
/// four checks' contiguous check-to-variable slots; no posterior access, so
/// quads need not be variable-disjoint. Each lane executes exactly the fused
/// scalar sweep's instruction sequence (two-minimum scan, sign parity,
/// signed-scale magnitudes) — bit-identical results.
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `deg <= MAX_QUAD_DEGREE`, and the
/// four checks' edge ranges lie inside `v2c`/`c2v`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn min_sum_flooding_quad(
    c: usize,
    deg: usize,
    check_offsets: &[u32],
    target_words: &[u64],
    scale: f64,
    v2c: &[f64],
    c2v: &mut [f64],
) {
    let sign_mask = _mm256_set1_pd(f64::from_bits(1u64 << 63));
    let zero = _mm256_setzero_pd();

    // Edge starts of the four checks.
    let starts = _mm_set_epi32(
        check_offsets[c + 3] as i32,
        check_offsets[c + 2] as i32,
        check_offsets[c + 1] as i32,
        check_offsets[c] as i32,
    );

    let mut vals = [_mm256_setzero_pd(); MAX_QUAD_DEGREE];
    let mut min1 = _mm256_set1_pd(f64::INFINITY);
    let mut min2 = _mm256_set1_pd(f64::INFINITY);
    let mut min1_idx = _mm256_setzero_si256();
    let mut neg = _mm256_setzero_pd();

    // Pass 1 — the two-minimum/sign scan over the incoming messages,
    // lanewise.
    for (k, val_k) in vals[..deg].iter_mut().enumerate() {
        let edge_k = _mm_add_epi32(starts, _mm_set1_epi32(k as i32));
        // SAFETY: each lane of `edge_k` is `check_offsets[c+q] + k` with
        // `k < deg`, so all four 8-byte gather offsets land inside `v2c`
        // (the caller guarantees the quad's edge ranges are in-bounds).
        let val = unsafe { _mm256_i32gather_pd(v2c.as_ptr(), edge_k, 8) };
        *val_k = val;
        let a = _mm256_andnot_pd(sign_mask, val);
        // Lanewise two-minimum update, mirroring the scalar selects exactly.
        let lt1 = _mm256_cmp_pd(a, min1, _CMP_LT_OQ);
        let runner_up = _mm256_blendv_pd(a, min1, lt1);
        let lt2 = _mm256_cmp_pd(runner_up, min2, _CMP_LT_OQ);
        min2 = _mm256_blendv_pd(min2, runner_up, lt2);
        min1 = _mm256_blendv_pd(min1, a, lt1);
        let k_vec = _mm256_set1_epi64x(k as i64);
        min1_idx = _mm256_blendv_epi8(min1_idx, k_vec, _mm256_castpd_si256(lt1));
        neg = _mm256_xor_pd(neg, _mm256_cmp_pd(val, zero, _CMP_LT_OQ));
    }

    // Per-lane signed scale: ±scale from the target syndrome bit, sign-
    // flipped by the lane's accumulated parity.
    let base = |q: usize| -> f64 {
        let bit = (target_words[(c + q) >> 6] >> ((c + q) & 63)) & 1;
        if bit == 1 {
            -scale
        } else {
            scale
        }
    };
    let base_v = _mm256_set_pd(base(3), base(2), base(1), base(0));
    let signed_scale = _mm256_xor_pd(base_v, _mm256_and_pd(neg, sign_mask));
    // Degree >= 2 in every quad, so both minima are finite.
    let mag1 = _mm256_mul_pd(signed_scale, min1);
    let mag2 = _mm256_mul_pd(signed_scale, min2);

    // Pass 2 — outgoing messages, scattered to the four checks' contiguous
    // message slots.
    let mut starts_arr = [0i32; 4];
    // SAFETY: `starts_arr` is a stack array of exactly four `i32`s (16
    // bytes), matching the 128-bit store; `storeu` has no alignment
    // requirement.
    unsafe { _mm_storeu_si128(starts_arr.as_mut_ptr().cast::<__m128i>(), starts) };
    for (k, &val) in vals[..deg].iter().enumerate() {
        let is_min = _mm256_cmpeq_epi64(min1_idx, _mm256_set1_epi64x(k as i64));
        let mag = _mm256_blendv_pd(mag1, mag2, _mm256_castsi256_pd(is_min));
        let out = _mm256_xor_pd(
            mag,
            _mm256_and_pd(_mm256_cmp_pd(val, zero, _CMP_LT_OQ), sign_mask),
        );
        let mut out_arr = [0.0f64; 4];
        // SAFETY: the destination is a stack array of exactly 4 × f64 (32
        // bytes), matching the 256-bit unaligned store.
        unsafe { _mm256_storeu_pd(out_arr.as_mut_ptr(), out) };
        for q in 0..4 {
            // SAFETY: `starts_arr[q] + k` is an edge index of check `c+q`
            // with `k < deg`, in-bounds for `c2v` per the caller's contract.
            unsafe {
                *c2v.get_unchecked_mut(starts_arr[q] as usize + k) = out_arr[q];
            }
        }
    }
}
