//! Integration tests spanning the whole workspace: simulator → sifting →
//! reconciliation → verification → privacy amplification → authentication.

use qkd::core::{
    ExecutionBackend, PipelineOptions, PostProcessingConfig, PostProcessor, ReconciliationMethod,
};
use qkd::manager::{Admission, FleetConfig, LinkManager, LinkSpec};
use qkd::simulator::{
    detection_events, CorrelatedKeySource, FleetWorkload, LinkConfig, LinkSimulator, WorkloadPreset,
};
use qkd::types::frame::StageLabel;
use qkd::types::{BitVec, QkdError};

#[test]
fn full_stack_distils_key_from_simulated_link() {
    let mut sim = LinkSimulator::new(LinkConfig::metro_25km(), 2024);
    let batch = sim.run_until_sifted(40_000, 500_000, 80_000_000).unwrap();
    let mut config = PostProcessingConfig::for_block_size(8192);
    config.sampling.sample_fraction = 0.15;
    let mut processor = PostProcessor::new(config, 1).unwrap();
    let results = processor.process_detections(&batch.events).unwrap();
    assert!(
        results.len() >= 3,
        "expected at least three full blocks, got {}",
        results.len()
    );

    let summary = processor.summary();
    assert_eq!(summary.blocks_failed, 0);
    assert!(
        summary.secret_fraction() > 0.15,
        "secret fraction {}",
        summary.secret_fraction()
    );
    assert!(summary.secret_fraction() < 0.95);
    // The distilled rate should not exceed the asymptotic bound for the
    // link's QBER.
    let qber = batch.sifted_qber();
    let asymptotic = qkd::privacy::asymptotic_secret_fraction(qber, 1.0);
    assert!(
        summary.secret_fraction() <= asymptotic,
        "measured fraction {} cannot beat the asymptotic bound {}",
        summary.secret_fraction(),
        asymptotic
    );
}

#[test]
fn pipelined_engine_distils_identical_keys_from_a_simulated_link() {
    // The same simulated detection batch through the sequential and the
    // pipelined batch paths of two identically-seeded engines: secret keys
    // must be bit-identical, and the deterministic accounting must agree —
    // regardless of shard count or channel depth.
    let mut sim = LinkSimulator::new(LinkConfig::metro_25km(), 77);
    let batch = sim.run_until_sifted(25_000, 200_000, 50_000_000).unwrap();
    let mk = || {
        let mut config = PostProcessingConfig::for_block_size(8192);
        config.sampling.sample_fraction = 0.15;
        PostProcessor::new(config, 4).unwrap()
    };

    let mut seq = mk();
    let seq_results = seq.process_detections(&batch.events).unwrap();
    assert!(!seq_results.is_empty());

    let mut pipe = mk();
    let options = PipelineOptions::default().with_shards(2);
    let pipelined = pipe
        .process_detections_pipelined(&batch.events, &options)
        .unwrap();

    assert_eq!(seq_results.len(), pipelined.results.len());
    for (s, p) in seq_results.iter().zip(&pipelined.results) {
        assert_eq!(s.block, p.block);
        assert_eq!(
            s.secret_key.bits, p.secret_key.bits,
            "block {} keys must be bit-identical",
            s.block.sequence
        );
        assert_eq!(s.qber, p.qber);
        assert_eq!(s.reconciliation_leak, p.reconciliation_leak);
        assert_eq!(s.auth_bits_consumed, p.auth_bits_consumed);
    }
    assert_eq!(seq.summary().accounting(), pipe.summary().accounting());
    assert_eq!(seq.pending_remainder_bits(), pipe.pending_remainder_bits());

    // The throughput report accounts for every block and every stage.
    assert_eq!(pipelined.throughput.items, seq_results.len());
    assert_eq!(pipelined.throughput.stages.len(), 5);
    assert_eq!(
        pipelined.throughput.input_bits,
        seq.summary().sifted_bits_in
    );
    assert_eq!(
        pipelined.throughput.output_bits,
        seq.summary().secret_bits_out
    );
}

#[test]
fn ldpc_and_cascade_both_distil_the_same_workload() {
    let mut src = CorrelatedKeySource::from_preset(WorkloadPreset::Backbone, 16_384, 5).unwrap();
    let block = src.next_block();

    for method in [ReconciliationMethod::Ldpc, ReconciliationMethod::Cascade] {
        let config = PostProcessingConfig::for_block_size(16_384).with_reconciliation(method);
        let mut processor = PostProcessor::new(config, 3).unwrap();
        let result = processor
            .process_sifted_block(&block.alice, &block.bob)
            .unwrap();
        assert!(
            result.secret_key.len() > 4_000,
            "{method:?} produced {}",
            result.secret_key.len()
        );
        assert_eq!(result.method, method);
        // Every stage must have been timed.
        for stage in [
            StageLabel::Estimation,
            StageLabel::Reconciliation,
            StageLabel::Verification,
            StageLabel::PrivacyAmplification,
            StageLabel::Authentication,
        ] {
            assert!(
                result.stage_time(stage).is_some(),
                "{method:?} missing {stage}"
            );
        }
    }
}

#[test]
fn backends_agree_functionally_but_differ_in_modeled_time() {
    let mut src = CorrelatedKeySource::from_preset(WorkloadPreset::Metro, 8192, 6).unwrap();
    let block = src.next_block();
    let mut lengths = Vec::new();
    for backend in [
        ExecutionBackend::CpuSingle,
        ExecutionBackend::SimGpu,
        ExecutionBackend::SimFpga,
    ] {
        let config = PostProcessingConfig::for_block_size(8192).with_backend(backend);
        let mut processor = PostProcessor::new(config, 5).unwrap();
        let result = processor
            .process_sifted_block(&block.alice, &block.bob)
            .unwrap();
        lengths.push(result.secret_key.len());
    }
    assert_eq!(lengths[0], lengths[1]);
    assert_eq!(lengths[1], lengths[2]);
}

#[test]
fn stressed_link_still_reconciles_but_yields_less_key() {
    let mut metro = CorrelatedKeySource::from_preset(WorkloadPreset::Metro, 16_384, 9).unwrap();
    let mut stressed =
        CorrelatedKeySource::from_preset(WorkloadPreset::LongHaul, 16_384, 9).unwrap();
    let metro_block = metro.next_block();
    let stressed_block = stressed.next_block();

    let mut processor =
        PostProcessor::new(PostProcessingConfig::for_block_size(16_384), 7).unwrap();
    let metro_result = processor
        .process_sifted_block(&metro_block.alice, &metro_block.bob)
        .unwrap();
    let stressed_result = processor
        .process_sifted_block(&stressed_block.alice, &stressed_block.bob)
        .unwrap();
    assert!(
        stressed_result.secret_key.len() < metro_result.secret_key.len() / 2,
        "4.5% QBER should cost far more key than 1%: {} vs {}",
        stressed_result.secret_key.len(),
        metro_result.secret_key.len()
    );
    assert!(stressed_result.reconciliation_leak > metro_result.reconciliation_leak);
}

#[test]
fn tampered_channel_aborts_the_block() {
    // A QBER near 15% models an intercept-resend attack; the protocol must
    // abort rather than distil key.
    let mut src = CorrelatedKeySource::new(8192, 0.15, 11).unwrap();
    let block = src.next_block();
    let mut processor = PostProcessor::new(PostProcessingConfig::for_block_size(8192), 13).unwrap();
    let err = processor
        .process_sifted_block(&block.alice, &block.bob)
        .unwrap_err();
    assert!(
        err.is_security_abort(),
        "expected a security abort, got {err}"
    );
    assert_eq!(processor.summary().blocks_ok, 0);
    assert_eq!(processor.summary().secret_bits_out, 0);
}

#[test]
fn scheduler_and_engine_tell_a_consistent_offload_story() {
    use qkd::hetero::{scheduler::pipeline_task_graph, CostModel, SchedulePolicy, Scheduler};
    // The simulated schedule over CPU+GPU+FPGA must beat the CPU-only one for
    // a large batch, which is the premise behind offloading in the engine.
    let tasks = pipeline_task_graph(32, 1 << 18);
    let cpu_only = Scheduler::new(
        vec![("cpu".into(), CostModel::cpu_core())],
        SchedulePolicy::GreedyEarliestFinish,
    )
    .unwrap();
    let hetero = Scheduler::new(
        vec![
            ("cpu".into(), CostModel::cpu_core()),
            ("gpu".into(), CostModel::sim_gpu()),
            ("fpga".into(), CostModel::sim_fpga()),
        ],
        SchedulePolicy::Heft,
    )
    .unwrap();
    let m_cpu = cpu_only.simulate(&tasks).unwrap().makespan;
    let m_het = hetero.simulate(&tasks).unwrap().makespan;
    assert!(
        m_het.as_secs_f64() < m_cpu.as_secs_f64() / 2.0,
        "heterogeneous schedule {m_het:?} should be far faster than CPU-only {m_cpu:?}"
    );
}

#[test]
fn fleet_serves_mixed_links_with_bit_identical_keys_and_a_balanced_ledger() {
    // Four links of mixed QBER share a three-worker pool with a small
    // backlog cap, fed by a bursty arrival schedule. Every link must distil
    // bit-identical keys to a solo engine with the same seed, and the key
    // store must reconcile exactly against the summed session ledgers.
    let workload = FleetWorkload::mixed(4, 4096, 91).unwrap();
    let mut fleet =
        LinkManager::new(FleetConfig::default().with_workers(3).with_max_backlog(2)).unwrap();
    let ids: Vec<usize> = workload
        .specs()
        .iter()
        .map(|spec| fleet.add_link(LinkSpec::from_fleet(spec)).unwrap())
        .collect();

    // Submit everything up front so the small backlog cap actually rejects
    // some bursts; record which epochs were admitted per link.
    let mut accepted: Vec<Vec<usize>> = vec![Vec::new(); workload.num_links()];
    let mut rejections = 0usize;
    for arrival in workload.bursty_arrivals(6, 2) {
        if arrival.blocks == 0 {
            continue;
        }
        match fleet
            .submit_epoch(ids[arrival.link], arrival.blocks)
            .unwrap()
        {
            Admission::Accepted { .. } => accepted[arrival.link].push(arrival.blocks),
            Admission::RejectedBacklog { limit, .. } => {
                assert_eq!(limit, 2);
                rejections += 1;
            }
            Admission::AcceptedAfterDrop { .. } => {
                panic!("the default admission policy never sheds batches")
            }
            Admission::RejectedFailed => panic!("no link should be dead during submission"),
        }
    }
    assert!(
        rejections > 0,
        "six epochs of bursts against a backlog of 2 must trip admission control"
    );

    let report = fleet.run().unwrap();
    assert_eq!(report.links.len(), 4);
    assert!(report.total_secret_bits() > 0);
    assert!(report.aggregate_output_bps() > 0.0);
    assert!((0.0..=1.0 + 1e-9).contains(&report.fairness_service()));
    assert!((0.0..=1.0 + 1e-9).contains(&report.fairness_blocks()));
    // The fleet summary is the merge of the per-link summaries.
    assert_eq!(
        report.summary.blocks_ok,
        report
            .links
            .iter()
            .map(|l| l.summary.blocks_ok)
            .sum::<usize>()
    );

    for (link, spec) in workload.specs().iter().enumerate() {
        // Replay the accepted epochs on a solo engine with the same seed.
        let link_spec = LinkSpec::from_fleet(spec);
        let mut solo = link_spec.solo_processor().unwrap();
        let mut source = link_spec.key_source().unwrap();
        let mut expected = BitVec::new();
        for &blocks in &accepted[link] {
            let mut alice = BitVec::new();
            let mut bob = BitVec::new();
            for _ in 0..blocks {
                let blk = source.next_block();
                alice.extend_from(&blk.alice);
                bob.extend_from(&blk.bob);
            }
            for result in solo
                .process_detections(&detection_events(&alice, &bob))
                .unwrap()
            {
                expected.extend_from(&result.secret_key.bits);
            }
        }
        assert_eq!(
            fleet.summary(ids[link]).unwrap().accounting(),
            solo.summary().accounting(),
            "link {link} fleet accounting must equal solo"
        );
        let status = fleet.store().status(ids[link]).unwrap();
        assert!(status.balances());
        assert_eq!(status.deposited_bits, expected.len() as u64);

        // Drain the store in several keys: concatenated deliveries must be
        // the exact solo bit stream, with no bit delivered twice.
        let mut delivered = BitVec::new();
        let mut serial = 0u64;
        while fleet.store().status(ids[link]).unwrap().available_bits > 0 {
            let remaining = fleet.store().status(ids[link]).unwrap().available_bits as usize;
            let chunk = remaining.min(777);
            let key = fleet.store().get_key(ids[link], chunk).unwrap();
            assert_eq!(key.id.serial, serial);
            serial += 1;
            delivered.extend_from(&key.bits);
        }
        assert_eq!(
            delivered, expected,
            "link {link} fleet keys must be bit-identical to solo"
        );
        // The drained store reports an exact shortfall.
        match fleet.store().get_key(ids[link], 8) {
            Err(QkdError::KeyStoreShortfall { available, .. }) => assert_eq!(available, 0),
            other => panic!("expected shortfall on drained link {link}, got {other:?}"),
        }
    }
    let ledger = fleet.reconcile().unwrap();
    assert_eq!(ledger.total_deposited(), report.total_secret_bits());
    assert_eq!(ledger.total_available(), 0);
    assert_eq!(ledger.total_delivered(), report.total_secret_bits());
}

#[test]
fn two_saes_drain_a_fleet_epoch_over_real_tcp_sockets() {
    use qkd::api::{ApiClient, ApiConfig, ApiServer, SaeProfile, SaeRegistry};
    use qkd::manager::KeyId;
    use std::sync::Arc;

    // A fleet distils an epoch into the store…
    let mut fleet = LinkManager::new(FleetConfig::default().with_workers(2)).unwrap();
    let link = fleet
        .add_link(LinkSpec::from_preset(WorkloadPreset::Metro, 8192, 2026))
        .unwrap();
    fleet.submit_epoch(link, 3).unwrap();
    fleet.run().unwrap();
    let deposited = fleet.store().status(link).unwrap().available_bits;
    assert!(deposited > 1024, "the epoch must have distilled key");

    // …and the delivery API puts it on the network for two SAEs.
    let registry = Arc::new(SaeRegistry::new());
    registry
        .register(SaeProfile::new("master-sae", "tok-master"))
        .unwrap();
    registry
        .register(SaeProfile::new("slave-sae", "tok-slave"))
        .unwrap();
    registry
        .register(SaeProfile::new("intruder-sae", "tok-intruder"))
        .unwrap();
    registry.entitle("master-sae", "slave-sae", link).unwrap();
    let server = ApiServer::start(
        fleet.store_handle(),
        Arc::clone(&registry),
        ApiConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Master reserves over TCP until the epoch is drained below one key.
    let master = ApiClient::new(addr, "tok-master");
    let slave = ApiClient::new(addr, "tok-slave");
    let key_size = 256usize;
    let mut master_bits = BitVec::new();
    let mut slave_bits = BitVec::new();
    while master.status("slave-sae").unwrap().available_bits >= key_size as u64 {
        let reserved = master.enc_keys("slave-sae", 1, key_size).unwrap();
        let ids: Vec<KeyId> = reserved.iter().map(|k| k.id).collect();
        for key in &reserved {
            master_bits.extend_from(&key.bits);
        }
        for key in slave.dec_keys("master-sae", &ids).unwrap() {
            slave_bits.extend_from(&key.bits);
        }
    }
    assert!(master_bits.len() as u64 > deposited - key_size as u64);
    assert_eq!(
        master_bits, slave_bits,
        "master- and slave-side key material must be bit-identical"
    );
    // The drained material is the store's deposit stream, in order: an
    // in-process drain of the remainder confirms the cursor position.
    let status = fleet.store().status(link).unwrap();
    assert!(status.balances());
    assert_eq!(
        status.delivered_bits,
        master_bits.len() as u64,
        "every delivered bit went through the API exactly once"
    );

    // An unentitled SAE is refused with the 401-shaped error.
    let intruder = ApiClient::new(addr, "tok-intruder");
    match intruder.enc_keys("slave-sae", 1, key_size) {
        Err(QkdError::Unauthorized { .. }) => {}
        other => panic!("expected a 401-shaped refusal, got {other:?}"),
    }

    // The ledger still reconciles bit-for-bit against the session summary.
    let ledger = fleet.reconcile().unwrap();
    assert_eq!(ledger.total_delivered(), master_bits.len() as u64);
    assert_eq!(
        ledger.total_deposited(),
        fleet.summary(link).unwrap().secret_bits_out
    );
    server.shutdown();
}

#[test]
fn error_types_are_stable_across_the_stack() {
    // Errors surfaced by the umbrella crate should be the shared QkdError.
    let mut src = CorrelatedKeySource::new(4096, 0.2, 17).unwrap();
    let block = src.next_block();
    let mut processor = PostProcessor::new(PostProcessingConfig::for_block_size(4096), 19).unwrap();
    match processor.process_sifted_block(&block.alice, &block.bob) {
        Err(QkdError::QberAboveThreshold { qber, threshold }) => {
            assert!(qber > threshold);
        }
        other => panic!("expected QberAboveThreshold, got {other:?}"),
    }
}
