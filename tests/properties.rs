//! Property-based tests on the core data structures and invariants.

use std::time::Duration;

use proptest::prelude::*;
use rand::Rng as _;

use qkd::core::{
    ChannelUsage, PipelineOptions, PostProcessingConfig, PostProcessor, SessionSummary,
};
use qkd::hetero::{StageMetrics, ThroughputReport};
use qkd::ldpc::{
    DecoderAlgorithm, DecoderConfig, DecoderScratch, LdpcReconciler, ParityCheckMatrix,
    ReconcilerConfig, ReconcilerScratch, Schedule, SyndromeDecoder,
};
use qkd::manager::{FleetConfig, LinkManager, LinkSpec};
use qkd::privacy::{ToeplitzHash, ToeplitzStrategy};
use qkd::simulator::{CorrelatedKeySource, FleetWorkload};
use qkd::types::gf2::{clmul64, Gf2_128};
use qkd::types::key::binary_entropy;
use qkd::types::rng::derive_rng;
use qkd::types::{BitVec, DetectionEvent};

/// All-signal, bases-matched detections carrying correlated bits with roughly
/// `qber` disagreement; sifting retains exactly these bits.
fn correlated_events(len: usize, qber: f64, seed: u64) -> Vec<DetectionEvent> {
    let blk = CorrelatedKeySource::new(len, qber, seed)
        .unwrap()
        .next_block();
    qkd::simulator::detection_events(&blk.alice, &blk.bob)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- BitVec ----------------

    #[test]
    fn bitvec_roundtrips_through_bools(bools in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(&bools);
        prop_assert_eq!(v.len(), bools.len());
        prop_assert_eq!(v.to_bools(), bools);
    }

    #[test]
    fn bitvec_roundtrips_through_bytes(bools in proptest::collection::vec(any::<bool>(), 1..300)) {
        let v = BitVec::from_bools(&bools);
        let bytes = v.to_bytes();
        let back = BitVec::from_bytes(&bytes, v.len());
        prop_assert_eq!(v, back);
    }

    #[test]
    fn xor_is_involutive(bools_a in proptest::collection::vec(any::<bool>(), 1..256),
                         seed in any::<u64>()) {
        let a = BitVec::from_bools(&bools_a);
        let mut rng = derive_rng(seed, "prop-xor");
        let b = BitVec::random(&mut rng, a.len());
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        prop_assert_eq!(c, a);
    }

    #[test]
    fn hamming_distance_is_a_metric(len in 1usize..200, seed in any::<u64>()) {
        let mut rng = derive_rng(seed, "prop-metric");
        let a = BitVec::random(&mut rng, len);
        let b = BitVec::random(&mut rng, len);
        let c = BitVec::random(&mut rng, len);
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
    }

    #[test]
    fn parity_range_composes(len in 2usize..300, seed in any::<u64>(), split_frac in 0.0f64..1.0) {
        let mut rng = derive_rng(seed, "prop-parity");
        let v = BitVec::random(&mut rng, len);
        let split = ((len as f64 * split_frac) as usize).min(len);
        let whole = v.parity_range(0, len);
        let parts = v.parity_range(0, split) ^ v.parity_range(split, len);
        prop_assert_eq!(whole, parts);
    }

    // ---------------- GF(2) arithmetic ----------------

    #[test]
    fn clmul_distributes_over_xor(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (lo1, hi1) = clmul64(a, b ^ c);
        let (lo2, hi2) = clmul64(a, b);
        let (lo3, hi3) = clmul64(a, c);
        prop_assert_eq!((lo1, hi1), (lo2 ^ lo3, hi2 ^ hi3));
    }

    #[test]
    fn gf128_field_axioms(a_lo in any::<u64>(), a_hi in any::<u64>(),
                          b_lo in any::<u64>(), b_hi in any::<u64>()) {
        let a = Gf2_128 { lo: a_lo, hi: a_hi };
        let b = Gf2_128 { lo: b_lo, hi: b_hi };
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * Gf2_128::ONE, a);
        prop_assert_eq!(a + a, Gf2_128::ZERO);
    }

    // ---------------- Binary entropy ----------------

    #[test]
    fn binary_entropy_bounds_and_symmetry(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    // ---------------- Toeplitz hashing ----------------

    #[test]
    fn toeplitz_strategies_are_bit_exact(n in 65usize..400, frac in 0.1f64..0.9, seed in any::<u64>()) {
        let m = ((n as f64 * frac) as usize).max(1);
        let mut rng = derive_rng(seed, "prop-toeplitz");
        let hash = ToeplitzHash::random(n, m, &mut rng).unwrap();
        let x = BitVec::random(&mut rng, n);
        let naive = hash.hash(&x, ToeplitzStrategy::Naive).unwrap();
        let packed = hash.hash(&x, ToeplitzStrategy::Packed).unwrap();
        let clmul = hash.hash(&x, ToeplitzStrategy::Clmul).unwrap();
        prop_assert_eq!(&naive, &packed);
        prop_assert_eq!(&naive, &clmul);
    }

    #[test]
    fn toeplitz_hash_is_linear(n in 65usize..300, seed in any::<u64>()) {
        let mut rng = derive_rng(seed, "prop-toeplitz-lin");
        let hash = ToeplitzHash::random(n, n / 2, &mut rng).unwrap();
        let x = BitVec::random(&mut rng, n);
        let y = BitVec::random(&mut rng, n);
        let hx = hash.hash(&x, ToeplitzStrategy::Clmul).unwrap();
        let hy = hash.hash(&y, ToeplitzStrategy::Clmul).unwrap();
        let hxy = hash.hash(&(&x ^ &y), ToeplitzStrategy::Clmul).unwrap();
        prop_assert_eq!(hxy, &hx ^ &hy);
    }
}

/// A bounded random session summary (bounded so merge sums cannot overflow).
fn random_summary(rng: &mut impl rand::Rng) -> SessionSummary {
    SessionSummary {
        blocks_ok: rng.gen_range(0usize..1000),
        blocks_failed: rng.gen_range(0usize..1000),
        sifted_bits_in: rng.gen_range(0u64..1 << 40),
        secret_bits_out: rng.gen_range(0u64..1 << 40),
        disclosed_bits: rng.gen_range(0u64..1 << 40),
        auth_bits_consumed: rng.gen_range(0u64..1 << 30),
        carried_bits: rng.gen_range(0u64..1 << 20),
        discarded_bits: rng.gen_range(0u64..1 << 20),
        processing_time: Duration::from_micros(rng.gen_range(0u64..10_000_000)),
        channel_usage: ChannelUsage {
            round_trips: rng.gen_range(0usize..10_000),
            messages: rng.gen_range(0usize..10_000),
            payload_bits: rng.gen_range(0usize..1 << 30),
        },
    }
}

/// A random throughput report over a random subset of stage names (so merges
/// exercise disjoint, overlapping and equal stage sets).
fn random_throughput(rng: &mut impl rand::Rng) -> ThroughputReport {
    let stage_names = ["sifting", "estimation", "reconciliation", "pa", "auth"];
    let mut report = ThroughputReport {
        makespan: Duration::from_micros(rng.gen_range(0u64..10_000_000)),
        items: rng.gen_range(0usize..10_000),
        input_bits: rng.gen_range(0u64..1 << 40),
        output_bits: rng.gen_range(0u64..1 << 40),
        ..Default::default()
    };
    for _ in 0..rng.gen_range(0usize..6) {
        let micros = rng.gen_range(1u64..1000);
        let mut m = StageMetrics::default();
        m.record(
            Duration::from_micros(micros),
            Duration::from_micros(micros),
            rng.gen_range(0usize..1 << 30),
            rng.gen_range(0usize..1 << 30),
        );
        report.record_stage(stage_names[rng.gen_range(0usize..stage_names.len())], m);
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- Fleet aggregation algebra ----------------

    /// `SessionSummary::merge` is commutative and associative — the property
    /// that makes fleet-level aggregation independent of link order and of
    /// how workers interleave per-link deltas.
    #[test]
    fn session_summary_merge_is_commutative_and_associative(seed in any::<u64>()) {
        let mut rng = derive_rng(seed, "prop-summary-merge");
        let a = random_summary(&mut rng);
        let b = random_summary(&mut rng);
        let c = random_summary(&mut rng);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        let mut ab_c = ab; // (a+b)+c
        ab_c.merge(&c);
        let mut bc = b; // a+(b+c)
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);

        // Identity.
        let mut a_id = a;
        a_id.merge(&SessionSummary::default());
        prop_assert_eq!(a_id, a);
    }

    /// `ThroughputReport::merge` handles disjoint stage sets (union), sums
    /// overlapping stages, and is commutative and associative — fleet reports
    /// merge per-link reports whose stage sets need not agree.
    #[test]
    fn throughput_report_merge_handles_disjoint_stage_sets(seed in any::<u64>()) {
        let mut rng = derive_rng(seed, "prop-throughput-merge");
        let a = random_throughput(&mut rng);
        let b = random_throughput(&mut rng);
        let c = random_throughput(&mut rng);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // The merged stage set is the union, and every stage not shared is
        // carried over untouched (disjoint parts must survive verbatim).
        let union: std::collections::BTreeSet<&String> =
            a.stages.keys().chain(b.stages.keys()).collect();
        prop_assert_eq!(ab.stages.len(), union.len());
        for (name, metrics) in &a.stages {
            if !b.stages.contains_key(name) {
                prop_assert_eq!(&ab.stages[name], metrics);
            }
        }
        for (name, metrics) in &b.stages {
            if !a.stages.contains_key(name) {
                prop_assert_eq!(&ab.stages[name], metrics);
            } else {
                // Overlapping stages sum their counts and bits.
                prop_assert_eq!(
                    ab.stages[name].count,
                    a.stages[name].count + metrics.count
                );
                prop_assert_eq!(
                    ab.stages[name].bits_in,
                    a.stages[name].bits_in + metrics.bits_in
                );
            }
        }
        // Makespans overlap in time, so the merge takes the maximum.
        prop_assert_eq!(ab.makespan, a.makespan.max(b.makespan));
        prop_assert_eq!(ab.items, a.items + b.items);
    }
}

proptest! {
    // Few cases: each runs two full engine batches.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The pipelined batch path is observationally identical to the
    /// sequential one for random channels, seeds and shardings: byte-equal
    /// final keys and equal (time-free) session accounting.
    #[test]
    fn pipelined_engine_equals_sequential_for_random_channels(
        seed in any::<u64>(),
        qber in 0.002f64..0.03,
        extra in 0usize..4096,
        shards in 1usize..4,
    ) {
        let block = 4096usize;
        let events = correlated_events(2 * block + extra, qber, seed);
        let mk = || {
            let mut config = PostProcessingConfig::for_block_size(block);
            config.sampling.sample_fraction = 0.2;
            PostProcessor::new(config, seed ^ 0x5EED).unwrap()
        };

        let mut seq = mk();
        let seq_results = seq.process_detections(&events).unwrap();

        let mut pipe = mk();
        let options = PipelineOptions { channel_capacity: 2, shards };
        let pipelined = pipe.process_detections_pipelined(&events, &options).unwrap();

        prop_assert_eq!(seq_results.len(), pipelined.results.len());
        for (s, p) in seq_results.iter().zip(&pipelined.results) {
            prop_assert_eq!(s.block, p.block);
            prop_assert_eq!(&s.secret_key.bits, &p.secret_key.bits);
            prop_assert_eq!(s.estimation_disclosed, p.estimation_disclosed);
            prop_assert_eq!(s.reconciliation_leak, p.reconciliation_leak);
            prop_assert_eq!(s.verification_leak, p.verification_leak);
            prop_assert_eq!(s.auth_bits_consumed, p.auth_bits_consumed);
        }
        prop_assert_eq!(seq.summary().accounting(), pipe.summary().accounting());
        prop_assert_eq!(seq.pending_remainder_bits(), pipe.pending_remainder_bits());
        prop_assert_eq!(seq.auth_key_remaining(), pipe.auth_key_remaining());
    }

    /// Determinism across tenancy: every link of a fleet — any worker count,
    /// any link count, any arrival schedule — delivers keys through the store
    /// that are bit-identical to a solo engine run of the same spec, with
    /// equal session accounting.
    #[test]
    fn fleet_links_equal_solo_runs_for_random_fleets(
        seed in any::<u64>(),
        links in 1usize..4,
        workers in 1usize..5,
        epochs in 1usize..3,
    ) {
        let block = 4096usize;
        let workload = FleetWorkload::mixed(links, block, seed).unwrap();
        let mut fleet =
            LinkManager::new(FleetConfig::default().with_workers(workers).with_max_backlog(16))
                .unwrap();
        let ids: Vec<usize> = workload
            .specs()
            .iter()
            .map(|spec| fleet.add_link(LinkSpec::from_fleet(spec)).unwrap())
            .collect();
        let mut accepted: Vec<Vec<usize>> = vec![Vec::new(); links];
        for arrival in workload.bursty_arrivals(epochs, 2) {
            if arrival.blocks == 0 {
                continue;
            }
            if fleet.submit_epoch(ids[arrival.link], arrival.blocks).unwrap().accepted() {
                accepted[arrival.link].push(arrival.blocks);
            }
        }
        fleet.run().unwrap();

        for (link, spec) in workload.specs().iter().enumerate() {
            let link_spec = LinkSpec::from_fleet(spec);
            let mut solo = link_spec.solo_processor().unwrap();
            let mut source = link_spec.key_source().unwrap();
            let mut expected = BitVec::new();
            for &blocks in &accepted[link] {
                let mut alice = BitVec::new();
                let mut bob = BitVec::new();
                for _ in 0..blocks {
                    let blk = source.next_block();
                    alice.extend_from(&blk.alice);
                    bob.extend_from(&blk.bob);
                }
                let events = qkd::simulator::detection_events(&alice, &bob);
                for result in solo.process_detections(&events).unwrap() {
                    expected.extend_from(&result.secret_key.bits);
                }
            }
            prop_assert_eq!(
                fleet.summary(ids[link]).unwrap().accounting(),
                solo.summary().accounting()
            );
            let status = fleet.store().status(ids[link]).unwrap();
            prop_assert_eq!(status.deposited_bits, expected.len() as u64);
            if !expected.is_empty() {
                let key = fleet.store().get_key(ids[link], expected.len()).unwrap();
                prop_assert_eq!(key.bits, expected);
            }
        }
        fleet.reconcile().unwrap();
    }
}

/// Parity-check matrices for the decoder-equivalence properties, built once
/// (PEG construction is the expensive part, the properties are not).
fn equivalence_matrices() -> &'static [ParityCheckMatrix] {
    use std::sync::OnceLock;
    static MATRICES: OnceLock<Vec<ParityCheckMatrix>> = OnceLock::new();
    MATRICES.get_or_init(|| {
        [256usize, 512, 1024, 2048]
            .iter()
            .map(|&n| ParityCheckMatrix::for_rate(n, 0.5, 700 + n as u64).unwrap())
            .collect()
    })
}

proptest! {
    // Fewer cases for the expensive LDPC properties.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The allocation-free scratch decoder must return bit-identical
    /// outcomes (error pattern, convergence flag, iteration count) to the
    /// retained reference implementation across the whole algorithm ×
    /// schedule grid — with one scratch reused through every combination.
    #[test]
    fn scratch_decoder_matches_reference_across_the_grid(seed in any::<u64>(),
                                                         qber in 0.005f64..0.08) {
        let matrices = equivalence_matrices();
        let h = &matrices[(seed % matrices.len() as u64) as usize];
        let mut rng = derive_rng(seed, "prop-decoder-equiv");
        let truth = BitVec::random_with_density(&mut rng, h.num_vars(), qber);
        let syndrome = h.syndrome(&truth);
        // A few shortened-style pinned positions exercise the override path.
        let overrides: Vec<(usize, f64)> = (0..16).map(|v| (v, 25.0)).collect();
        let mut scratch = DecoderScratch::new();
        for algorithm in [DecoderAlgorithm::NORMALIZED_MIN_SUM, DecoderAlgorithm::SumProduct] {
            for schedule in [Schedule::Layered, Schedule::Flooding] {
                let config = DecoderConfig {
                    algorithm,
                    schedule,
                    max_iterations: 20,
                    ..DecoderConfig::default()
                };
                let dec = SyndromeDecoder::new(h, config).unwrap();
                let reference = dec.decode_reference(&syndrome, qber, &overrides).unwrap();
                let optimized = dec
                    .decode_with_scratch(&syndrome, qber, &overrides, &mut scratch)
                    .unwrap();
                prop_assert_eq!(reference, optimized,
                    "diverged for {:?}/{:?} at n={}", algorithm, schedule, h.num_vars());
            }
        }
    }

    /// One scratch serves decoders of mixed block sizes in random order, and
    /// one reconciler scratch serves mixed payload lengths — both matching
    /// their reference/internal-scratch counterparts exactly.
    #[test]
    fn one_scratch_serves_mixed_block_sizes(seed in any::<u64>(), qber in 0.005f64..0.04) {
        let matrices = equivalence_matrices();
        let mut rng = derive_rng(seed, "prop-decoder-mixed");
        let mut scratch = DecoderScratch::new();
        for step in 0..4u64 {
            let h = &matrices[((seed.rotate_left(step as u32 * 8)) % matrices.len() as u64) as usize];
            let truth = BitVec::random_with_density(&mut rng, h.num_vars(), qber);
            let syndrome = h.syndrome(&truth);
            let dec = SyndromeDecoder::new(h, DecoderConfig::default()).unwrap();
            let reference = dec.decode_reference(&syndrome, qber, &[]).unwrap();
            let optimized = dec
                .decode_with_scratch(&syndrome, qber, &[], &mut scratch)
                .unwrap();
            prop_assert_eq!(reference, optimized, "n={} diverged", h.num_vars());
        }

        // Reconciler-level reuse across full and shortened payloads.
        let reconciler = LdpcReconciler::new(ReconcilerConfig::for_block_size(1024)).unwrap();
        let mut rec_scratch = ReconcilerScratch::new();
        for &payload in &[1024usize, 700, 1024, 900] {
            let alice = BitVec::random(&mut rng, payload);
            let mut bob = alice.clone();
            for i in 0..payload {
                if rng.gen_bool(qber) {
                    bob.flip(i);
                }
            }
            let with_scratch =
                reconciler.reconcile_with_scratch(&alice, &bob, qber, &mut rec_scratch);
            let plain = reconciler.reconcile(&alice, &bob, qber);
            match (with_scratch, plain) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "paths diverged: {:?} vs {:?}", a, b),
            }
        }
    }

    /// The word-packed syndrome map must agree with the bit-by-bit reference
    /// on both PEG and quasi-cyclic constructions.
    #[test]
    fn packed_syndrome_matches_bitwise_reference(seed in any::<u64>()) {
        let mut rng = derive_rng(seed, "prop-syndrome-packed");
        let peg = &equivalence_matrices()[(seed % 4) as usize];
        let qc = ParityCheckMatrix::quasi_cyclic(512, 128, 64, 8, seed % 1000).unwrap();
        for h in [peg, &qc] {
            let x = BitVec::random(&mut rng, h.num_vars());
            prop_assert_eq!(h.syndrome(&x), h.syndrome_reference(&x));
            let mut reused = BitVec::ones(13);
            h.syndrome_into(&x, &mut reused);
            prop_assert_eq!(reused, h.syndrome_reference(&x));
        }
    }

    #[test]
    fn ldpc_syndrome_is_linear_and_decoding_corrects_sparse_errors(seed in any::<u64>()) {
        let matrix = ParityCheckMatrix::for_rate(1024, 0.5, seed).unwrap();
        let mut rng = derive_rng(seed, "prop-ldpc");
        let a = BitVec::random(&mut rng, 1024);
        let b = BitVec::random(&mut rng, 1024);
        // Linearity of the syndrome map.
        let s_sum = matrix.syndrome(&(&a ^ &b));
        prop_assert_eq!(s_sum, &matrix.syndrome(&a) ^ &matrix.syndrome(&b));
        // A 1.5% error pattern is decodable by the rate-1/2 code.
        let truth = BitVec::random_with_density(&mut rng, 1024, 0.015);
        let decoder = SyndromeDecoder::new(&matrix, DecoderConfig::default()).unwrap();
        let out = decoder.decode(&matrix.syndrome(&truth), 0.02, &[]).unwrap();
        prop_assert!(out.converged);
        prop_assert_eq!(out.error_pattern, truth);
    }
}
