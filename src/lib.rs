//! Umbrella crate for the QKD post-processing reproduction.
//!
//! Re-exports every workspace crate under one name so examples, integration
//! tests and downstream users can depend on a single `qkd` crate:
//!
//! * [`types`] — bit strings, key containers, framing, GF(2) helpers;
//! * [`simulator`] — decoy-state BB84 link simulator and workload generators;
//! * [`sifting`] — basis sifting, QBER estimation, decoy-state bounds;
//! * [`cascade`] — interactive Cascade reconciliation (baseline);
//! * [`ldpc`] — rate-adaptive LDPC syndrome reconciliation;
//! * [`privacy`] — Toeplitz privacy amplification and finite-key analysis;
//! * [`auth`] — Wegman–Carter authentication and key-consumption ledger;
//! * [`hetero`] — heterogeneous devices, cost models, schedulers, pipelines;
//! * [`core`] — the end-to-end post-processing engine;
//! * [`manager`] — the fleet key-manager service: many links over a shared
//!   worker pool, with a key-store delivery API;
//! * [`journal`] — the store's durability tier: append-only checksummed
//!   write-ahead log, group-commit fsync, compaction and crash recovery;
//! * [`api`] — the ETSI GS QKD 014-shaped networked key-delivery front-end
//!   (HTTP server, SAE registry, client).
//!
//! # Quickstart
//!
//! ```
//! use qkd::core::{PostProcessingConfig, PostProcessor};
//! use qkd::simulator::{CorrelatedKeySource, WorkloadPreset};
//!
//! let mut processor = PostProcessor::new(PostProcessingConfig::for_block_size(4096), 1).unwrap();
//! let mut source = CorrelatedKeySource::from_preset(WorkloadPreset::Metro, 4096, 2).unwrap();
//! let block = source.next_block();
//! let result = processor.process_sifted_block(&block.alice, &block.bob).unwrap();
//! println!("distilled {} secret bits", result.secret_key.len());
//! ```

#![warn(missing_docs)]

pub use qkd_api as api;
pub use qkd_auth as auth;
pub use qkd_cascade as cascade;
pub use qkd_core as core;
pub use qkd_hetero as hetero;
pub use qkd_journal as journal;
pub use qkd_ldpc as ldpc;
pub use qkd_manager as manager;
pub use qkd_privacy as privacy;
pub use qkd_sifting as sifting;
pub use qkd_simulator as simulator;
pub use qkd_types as types;
